// Package blockftl implements a block-level FTL, the coarse-grained end of
// the paper's §2.1 taxonomy.
//
// A block-level FTL maps logical blocks to physical blocks; a page's offset
// inside its block is fixed. The mapping table is tiny — 4 B per 256 KB
// block, which is exactly the budget the paper grants the page-level
// schemes' mapping caches (§5.1) — but any write that cannot continue the
// physical block's program order forces a copy-merge of the whole block,
// which is why the paper dismisses block-level FTLs for random writes. This
// implementation exists to ground that comparison (see the
// BenchmarkMappingGranularity harness) and to document the cache-size
// convention.
package blockftl

import (
	"fmt"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
)

// Device is a standalone block-mapped SSD simulator sharing the flash chip
// substrate with the page-level framework.
type Device struct {
	cfg  ftl.Config
	chip *flash.Chip

	blockMap []flash.BlockID // logical block → physical block, -1 unmapped
	free     []flash.BlockID

	logicalBlocks int
	ppb           int

	clock time.Duration
	m     ftl.Metrics

	truth []flash.PPN // ground truth for verification
}

// New builds a block-level device. The physical space is the logical space
// plus over-provisioning (merges need at least one spare block).
func New(cfg ftl.Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	full := ftl.DefaultConfig(cfg.LogicalBytes)
	if cfg.PageSize != 0 {
		full.PageSize = cfg.PageSize
	}
	if cfg.PagesPerBlock != 0 {
		full.PagesPerBlock = cfg.PagesPerBlock
	}
	if cfg.OverProvision != 0 {
		full.OverProvision = cfg.OverProvision
	}
	if cfg.ReadLatency != 0 {
		full.ReadLatency = cfg.ReadLatency
	}
	if cfg.WriteLatency != 0 {
		full.WriteLatency = cfg.WriteLatency
	}
	if cfg.EraseLatency != 0 {
		full.EraseLatency = cfg.EraseLatency
	}
	ppb := full.PagesPerBlock
	logicalPages := full.LogicalPages()
	logicalBlocks := int((logicalPages + int64(ppb) - 1) / int64(ppb))
	phys := logicalBlocks + int(float64(logicalBlocks)*full.OverProvision)
	if phys < logicalBlocks+2 {
		phys = logicalBlocks + 2
	}
	chipCfg := flash.Config{
		PageSize:      full.PageSize,
		PagesPerBlock: ppb,
		NumBlocks:     phys,
		ReadLatency:   full.ReadLatency,
		WriteLatency:  full.WriteLatency,
		EraseLatency:  full.EraseLatency,
		// Block mapping places pages at fixed offsets, which requires the
		// SLC-era freedom to program a block's pages in any order.
		AllowOutOfOrder: true,
	}
	chip, err := flash.New(chipCfg)
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:           full,
		chip:          chip,
		blockMap:      make([]flash.BlockID, logicalBlocks),
		logicalBlocks: logicalBlocks,
		ppb:           ppb,
		truth:         make([]flash.PPN, logicalPages),
	}
	for i := range d.blockMap {
		d.blockMap[i] = -1
	}
	for i := range d.truth {
		d.truth[i] = flash.InvalidPPN
	}
	for b := phys - 1; b >= 0; b-- {
		d.free = append(d.free, flash.BlockID(b))
	}
	return d, nil
}

// MappingTableBytes returns the RAM footprint of the block map (4 B per
// logical block) — the paper's mapping-cache budget convention.
func (d *Device) MappingTableBytes() int64 { return int64(d.logicalBlocks) * 4 }

// Metrics returns the accumulated counters.
func (d *Device) Metrics() ftl.Metrics { return d.m }

// Chip exposes the flash chip for tests.
func (d *Device) Chip() *flash.Chip { return d.chip }

// Serve executes one request FCFS and returns its response time.
func (d *Device) Serve(req trace.Request) (time.Duration, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	if req.End() > d.cfg.LogicalBytes {
		return 0, fmt.Errorf("blockftl: request beyond capacity")
	}
	arrival := time.Duration(req.Arrival)
	start := d.clock
	if arrival > start {
		start = arrival
	}
	var acc time.Duration
	switch req.Op {
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA:
		first, last := req.Pages(d.cfg.PageSize)
		for lpn := first; lpn <= last; lpn++ {
			var lat time.Duration
			var err error
			if req.IsWrite() {
				d.m.PageWrites++
				lat, err = d.writePage(lpn)
			} else {
				d.m.PageReads++
				lat, err = d.readPage(lpn)
			}
			if err != nil {
				return 0, err
			}
			acc += lat
		}
	case trace.OpTrim, trace.OpFlush:
		// TRIM is advisory and this pre-TRIM design ignores it (the data
		// stays until overwritten, which the spec permits); every write is
		// already synchronous, so a flush barrier has nothing to drain.
	default:
		return 0, fmt.Errorf("blockftl: unhandled request op %v", req.Op)
	}
	d.clock = start + acc
	resp := d.clock - arrival
	d.m.Requests++
	d.m.ServiceTime += acc
	d.m.ResponseTime += resp
	d.m.QueueTime += start - arrival
	d.m.ObserveResponse(resp)
	if ftl.SanitizerEnabled {
		if err := ftl.SanitizeCheck("blockftl", d.CheckConsistency); err != nil {
			return 0, err
		}
	}
	return resp, nil
}

// Run serves every request.
func (d *Device) Run(reqs []trace.Request) (ftl.Metrics, error) {
	for i := range reqs {
		if _, err := d.Serve(reqs[i]); err != nil {
			return d.m, fmt.Errorf("blockftl: request %d: %w", i, err)
		}
	}
	return d.m, nil
}

func (d *Device) pageAt(lb int, off int) (flash.PPN, bool) {
	phys := d.blockMap[lb]
	if phys < 0 {
		return flash.InvalidPPN, false
	}
	return d.chip.PageAt(phys, off), true
}

func (d *Device) readPage(lpn int64) (time.Duration, error) {
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))
	ppn, ok := d.pageAt(lb, off)
	if !ok || d.chip.State(ppn) != flash.PageValid {
		if d.truth[lpn].Valid() {
			return 0, fmt.Errorf("blockftl: lost mapping for lpn %d", lpn)
		}
		d.m.UnmappedReads++
		return 0, nil
	}
	if ppn != d.truth[lpn] {
		return 0, fmt.Errorf("blockftl: mistranslated lpn %d: %d vs truth %d", lpn, ppn, d.truth[lpn])
	}
	lat, err := d.chip.Read(ppn)
	if err != nil {
		return 0, err
	}
	d.m.FlashReads++
	return lat, nil
}

// writePage programs the page at its fixed offset when that page is still
// free; otherwise it performs the copy-merge that defines block-level FTL
// behaviour.
func (d *Device) writePage(lpn int64) (time.Duration, error) {
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))
	phys := d.blockMap[lb]

	if phys < 0 {
		blk, err := d.allocBlock()
		if err != nil {
			return 0, err
		}
		d.blockMap[lb] = blk
		phys = blk
	}
	ppn := d.chip.PageAt(phys, off)
	if d.chip.State(ppn) == flash.PageFree {
		lat, err := d.chip.Program(ppn, flash.Meta{Kind: flash.KindData, Tag: lpn})
		if err != nil {
			return 0, err
		}
		d.m.FlashPrograms++
		d.truth[lpn] = ppn
		return lat, nil
	}
	// Overwrite of a programmed page: the rigid mapping forces a merge.
	return d.merge(lb, off, lpn)
}

// merge rewrites logical block lb into a fresh physical block with the new
// page content at off, copying every other valid page, then erases the old
// block. This is the full-merge that makes block-level FTLs collapse under
// random writes.
func (d *Device) merge(lb, off int, lpn int64) (time.Duration, error) {
	newBlk, err := d.allocBlock()
	if err != nil {
		return 0, err
	}
	old := d.blockMap[lb]
	var acc time.Duration
	base := int64(lb) * int64(d.ppb)
	for i := 0; i < d.ppb; i++ {
		dst := d.chip.PageAt(newBlk, i)
		cur := base + int64(i)
		switch {
		case i == off:
			lat, err := d.chip.Program(dst, flash.Meta{Kind: flash.KindData, Tag: cur})
			if err != nil {
				return 0, err
			}
			d.m.FlashPrograms++
			d.truth[cur] = dst
			acc += lat
		case old >= 0 && d.chip.State(d.chip.PageAt(old, i)) == flash.PageValid:
			src := d.chip.PageAt(old, i)
			lat, err := d.chip.Read(src)
			if err != nil {
				return 0, err
			}
			d.m.FlashReads++
			acc += lat
			lat, err = d.chip.Program(dst, flash.Meta{Kind: flash.KindData, Tag: cur})
			if err != nil {
				return 0, err
			}
			d.m.FlashPrograms++
			d.m.GCDataMigrations++
			d.truth[cur] = dst
			acc += lat
		}
	}
	d.blockMap[lb] = newBlk
	if old >= 0 {
		for i := 0; i < d.ppb; i++ {
			p := d.chip.PageAt(old, i)
			if d.chip.State(p) == flash.PageValid {
				if err := d.chip.Invalidate(p); err != nil {
					return 0, err
				}
			}
		}
		lat, err := d.chip.Erase(old)
		if err != nil {
			return 0, err
		}
		d.m.FlashErases++
		d.m.GCDataCollections++
		acc += lat
		d.free = append(d.free, old)
	}
	return acc, nil
}

func (d *Device) allocBlock() (flash.BlockID, error) {
	if len(d.free) == 0 {
		return -1, fmt.Errorf("blockftl: out of free blocks")
	}
	b := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	return b, nil
}

// CheckConsistency verifies the truth table against the chip.
func (d *Device) CheckConsistency() error {
	if err := d.chip.CheckInvariants(); err != nil {
		return err
	}
	for lpn, ppn := range d.truth {
		if !ppn.Valid() {
			continue
		}
		if st := d.chip.State(ppn); st != flash.PageValid {
			return fmt.Errorf("blockftl: truth[%d]=%d in state %v", lpn, ppn, st)
		}
		if m := d.chip.MetaOf(ppn); m.Tag != int64(lpn) {
			return fmt.Errorf("blockftl: truth[%d]=%d tagged %d", lpn, ppn, m.Tag)
		}
	}
	return nil
}
