package blockftl

import (
	"math/rand"
	"testing"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(ftl.Config{
		LogicalBytes:  4 << 20, // 1024 pages, 32 logical blocks
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestMappingTableConvention(t *testing.T) {
	d, err := New(ftl.Config{LogicalBytes: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// 512 MB / 256 KB blocks = 2048 blocks → 8 KB, the paper's cache size.
	if got := d.MappingTableBytes(); got != 8<<10 {
		t.Fatalf("table = %d, want 8KB", got)
	}
}

func TestSequentialWritesAreCheap(t *testing.T) {
	d := newDevice(t)
	arrival := int64(0)
	for p := int64(0); p < 256; p++ { // 8 blocks, strictly in order
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	m := d.Metrics()
	if m.FlashPrograms != 256 {
		t.Fatalf("programs = %d, want 256 (no merges)", m.FlashPrograms)
	}
	if m.FlashErases != 0 {
		t.Fatalf("erases = %d, want 0", m.FlashErases)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOverwriteForcesMerges(t *testing.T) {
	d := newDevice(t)
	arrival := int64(0)
	// Fill one block, then overwrite a middle page: full merge expected.
	for p := int64(0); p < 32; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	before := d.Metrics()
	if _, err := d.Serve(wr(arrival, 5)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.FlashErases != before.FlashErases+1 {
		t.Fatal("overwrite did not merge")
	}
	// Merge copies the other 31 valid pages.
	if got := m.GCDataMigrations - before.GCDataMigrations; got != 31 {
		t.Fatalf("migrations = %d, want 31", got)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderFirstWrite(t *testing.T) {
	d := newDevice(t)
	// First write of a logical block at offset 3: block-level FTLs rely on
	// SLC-style random in-block programming, so no merge is needed.
	if _, err := d.Serve(wr(0, 3)); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().FlashErases != 0 {
		t.Fatal("first out-of-order write should not merge")
	}
	// A later in-fill at a lower offset also programs directly.
	if _, err := d.Serve(wr(1e6, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(rd(2e6, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnmapped(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Serve(rd(0, 100)); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().UnmappedReads != 1 {
		t.Fatal("unmapped read not counted")
	}
}

func TestRandomWorkloadConsistency(t *testing.T) {
	d := newDevice(t)
	rng := rand.New(rand.NewSource(3))
	arrival := int64(0)
	for i := 0; i < 4000; i++ {
		p := int64(rng.Intn(1024))
		arrival += int64(1e6)
		var req trace.Request
		if rng.Intn(3) == 0 {
			req = rd(arrival, p)
		} else {
			req = wr(arrival, p)
		}
		if _, err := d.Serve(req); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Random writes on a block FTL must show brutal write amplification.
	m := d.Metrics()
	if wa := m.WriteAmplification(); wa < 3 {
		t.Fatalf("WA = %.2f, expected block-level FTL to amplify heavily", wa)
	}
}

func TestRunHelper(t *testing.T) {
	d := newDevice(t)
	reqs := []trace.Request{wr(0, 0), wr(1e6, 1), rd(2e6, 0)}
	m, err := d.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 3 {
		t.Fatalf("requests = %d", m.Requests)
	}
}

func TestRejectsBeyondCapacity(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Serve(wr(0, 1024)); err == nil {
		t.Fatal("request beyond capacity accepted")
	}
	if _, err := d.Serve(trace.Request{Offset: -1, Length: 4096}); err == nil {
		t.Fatal("invalid request accepted")
	}
}
