package ftl

import (
	"container/heap"

	"repro/internal/flash"
)

// blockKind tracks what an allocated block holds; garbage collection treats
// data and translation blocks differently (§3.1's Ngcd vs Ngct).
type blockKind uint8

const (
	blockFree blockKind = iota
	blockData
	blockTrans
)

// blockMgr owns physical block allocation: per-die free-block lists, one
// active write frontier per (block kind, die), and the greedy GC victim
// queue — an indexed max-heap on invalid-page count, re-keyed on every
// invalidation so popping always yields the fullest-of-garbage block.
//
// On a multi-die device consecutive data-page allocations round-robin
// across dies (page-level striping), so consecutive logical pages land on
// consecutive channels and independent accesses overlap in the scheduler.
// Translation blocks follow the configured TPPlacement: striped like data,
// or pinned to the dies of channel 0. With one die everything collapses to
// the single-frontier FIFO allocator this generalizes.
type blockMgr struct {
	chip  *flash.Chip
	kinds []blockKind

	numDies int
	free    [][]flash.BlockID // per-die free FIFO
	frHead  []int             // consumed prefix of each die's FIFO

	dataFrontier  []flash.BlockID // per die; -1 when no open block
	transFrontier []flash.BlockID
	dataDies      []int // placement set for data blocks (all dies)
	transDies     []int // placement set for translation blocks
	dataRR        int   // round-robin cursors over the placement sets
	transRR       int

	victims victimHeap
	heapIdx []int // position of each block in victims, -1 when absent

	policy  GCPolicy
	tick    int64   // advances on every invalidation (cost-benefit age base)
	lastMod []int64 // tick of each block's latest invalidation
}

func newBlockMgr(chip *flash.Chip, placement TPPlacement) *blockMgr {
	cfg := chip.Config()
	n := cfg.NumBlocks
	dies := cfg.NumDies()
	bm := &blockMgr{
		chip:          chip,
		kinds:         make([]blockKind, n),
		numDies:       dies,
		free:          make([][]flash.BlockID, dies),
		frHead:        make([]int, dies),
		dataFrontier:  make([]flash.BlockID, dies),
		transFrontier: make([]flash.BlockID, dies),
		heapIdx:       make([]int, n),
		lastMod:       make([]int64, n),
	}
	bm.victims.bm = bm
	for d := 0; d < dies; d++ {
		bm.dataFrontier[d] = -1
		bm.transFrontier[d] = -1
		bm.dataDies = append(bm.dataDies, d)
		if placement == TPStriped || cfg.ChannelOfDie(d) == 0 {
			bm.transDies = append(bm.transDies, d)
		}
	}
	for b := range bm.heapIdx {
		bm.heapIdx[b] = -1
	}
	// Each FIFO pops from the front: append ascending so low blocks
	// allocate first (reproducible layout; Format lays data out
	// sequentially). Blocks interleave across dies (flash.Config.DieOf).
	for b := 0; b < n; b++ {
		die := cfg.DieOf(flash.BlockID(b))
		bm.free[die] = append(bm.free[die], flash.BlockID(b))
	}
	return bm
}

func (bm *blockMgr) freeCount() int {
	n := 0
	for d := 0; d < bm.numDies; d++ {
		n += len(bm.free[d]) - bm.frHead[d]
	}
	return n
}

// popFree takes from the FRONT of die's free list (FIFO): erased blocks
// re-enter circulation in release order, so no block idles at the bottom of
// a stack accumulating an ever-growing wear deficit.
func (bm *blockMgr) popFree(die int) (flash.BlockID, bool) {
	if bm.frHead[die] >= len(bm.free[die]) {
		return -1, false
	}
	b := bm.free[die][bm.frHead[die]]
	bm.frHead[die]++
	// Compact once the dead prefix dominates.
	if bm.frHead[die] > 64 && bm.frHead[die]*2 > len(bm.free[die]) {
		bm.free[die] = append(bm.free[die][:0], bm.free[die][bm.frHead[die]:]...)
		bm.frHead[die] = 0
	}
	return b, true
}

// frontiers returns the per-die frontier slice and placement set for kind.
func (bm *blockMgr) frontiers(kind blockKind) ([]flash.BlockID, []int, *int) {
	if kind == blockTrans {
		return bm.transFrontier, bm.transDies, &bm.transRR
	}
	return bm.dataFrontier, bm.dataDies, &bm.dataRR
}

// isFrontier reports whether blk is an open write frontier of either kind.
func (bm *blockMgr) isFrontier(blk flash.BlockID) bool {
	for d := 0; d < bm.numDies; d++ {
		if bm.dataFrontier[d] == blk || bm.transFrontier[d] == blk {
			return true
		}
	}
	return false
}

// tryAllocOnDie returns the next free page of die's frontier for kind,
// opening a new block from die's free list when the frontier is full. It
// fails (without error) when the frontier is full and the die has no free
// block left.
func (bm *blockMgr) tryAllocOnDie(kind blockKind, die int) (flash.PPN, bool) {
	frontiers, _, _ := bm.frontiers(kind)
	frontier := &frontiers[die]
	ppb := bm.chip.Config().PagesPerBlock
	if *frontier >= 0 && bm.chip.WritePtr(*frontier) < ppb {
		return bm.chip.PageAt(*frontier, bm.chip.WritePtr(*frontier)), true
	}
	// The current frontier is full: retire it and open a new block. The
	// retired block is enqueued as a GC candidate only after the frontier
	// pointer moves off it — maybeEnqueue skips active frontiers, and
	// pages invalidated during its tenure must not be lost to GC.
	blk, ok := bm.popFree(die)
	if !ok {
		return flash.InvalidPPN, false
	}
	old := *frontier
	bm.kinds[blk] = kind
	*frontier = blk
	if old >= 0 {
		bm.maybeEnqueue(old)
	}
	return bm.chip.PageAt(blk, 0), true
}

// alloc returns the next free page for kind, striping consecutive
// allocations across the kind's placement set. When the round-robin die
// cannot serve (frontier full, die out of free blocks), allocation falls
// back to the rest of the placement set and finally to any die — a die
// running dry must degrade striping, not fail the write. The caller is
// responsible for keeping the free count above the GC threshold.
func (bm *blockMgr) alloc(kind blockKind) (flash.PPN, error) {
	_, dies, rr := bm.frontiers(kind)
	i := *rr % len(dies)
	*rr++
	if ppn, ok := bm.tryAllocOnDie(kind, dies[i]); ok {
		return ppn, nil
	}
	for off := 1; off < len(dies); off++ {
		if ppn, ok := bm.tryAllocOnDie(kind, dies[(i+off)%len(dies)]); ok {
			return ppn, nil
		}
	}
	if len(dies) < bm.numDies {
		for die := 0; die < bm.numDies; die++ {
			if ppn, ok := bm.tryAllocOnDie(kind, die); ok {
				return ppn, nil
			}
		}
	}
	return flash.InvalidPPN, errf("out of free blocks (device full)")
}

// invalidate marks ppn invalid and enqueues its block as a GC candidate if
// the block is full.
func (bm *blockMgr) invalidate(ppn flash.PPN) error {
	if err := bm.chip.Invalidate(ppn); err != nil {
		return err
	}
	blk := bm.chip.Block(ppn)
	bm.tick++
	bm.lastMod[blk] = bm.tick
	bm.maybeEnqueue(blk)
	return nil
}

// maybeEnqueue inserts or re-keys blk in the victim heap when it is full,
// reclaimable and not an open frontier.
func (bm *blockMgr) maybeEnqueue(blk flash.BlockID) {
	if bm.isFrontier(blk) {
		return
	}
	if bm.kinds[blk] == blockFree {
		return
	}
	ppb := bm.chip.Config().PagesPerBlock
	if bm.chip.WritePtr(blk) < ppb {
		return // not fully programmed yet
	}
	invalid := ppb - bm.chip.ValidCount(blk)
	if invalid == 0 {
		return // nothing to reclaim
	}
	if i := bm.heapIdx[blk]; i >= 0 {
		bm.victims.items[i].invalid = invalid
		heap.Fix(&bm.victims, i)
		return
	}
	heap.Push(&bm.victims, victim{blk: blk, invalid: invalid})
}

// popVictim returns the next GC victim under the configured policy, or -1
// when no block is reclaimable.
func (bm *blockMgr) popVictim() flash.BlockID {
	if bm.policy == GCCostBenefit {
		return bm.popVictimCostBenefit()
	}
	for bm.victims.Len() > 0 {
		v := heap.Pop(&bm.victims).(victim)
		bm.heapIdx[v.blk] = -1
		if bm.chip.ValidCount(v.blk) == bm.chip.Config().PagesPerBlock {
			continue // defensive; re-keying should prevent this
		}
		return v.blk
	}
	return -1
}

// popVictimCostBenefit scans reclaimable blocks for the one maximizing the
// classic cost-benefit score age*(1-u)/(2u), where u is the valid fraction
// and age the time since the block's last invalidation. The chosen block is
// also removed from the greedy heap so the two structures stay coherent.
func (bm *blockMgr) popVictimCostBenefit() flash.BlockID {
	ppb := bm.chip.Config().PagesPerBlock
	best := flash.BlockID(-1)
	bestScore := -1.0
	for b := 0; b < len(bm.kinds); b++ {
		blk := flash.BlockID(b)
		if bm.kinds[blk] == blockFree || bm.isFrontier(blk) {
			continue
		}
		if bm.chip.WritePtr(blk) < ppb {
			continue
		}
		valid := bm.chip.ValidCount(blk)
		invalid := ppb - valid
		if invalid == 0 {
			continue
		}
		age := float64(bm.tick - bm.lastMod[blk] + 1)
		var score float64
		if valid == 0 {
			score = age * float64(ppb) * 2 // free win: prefer oldest empty block
		} else {
			u := float64(valid) / float64(ppb)
			score = age * (1 - u) / (2 * u)
		}
		if score > bestScore {
			bestScore, best = score, blk
		}
	}
	if best >= 0 {
		bm.removeFromHeap(best)
	}
	return best
}

// removeFromHeap drops blk's pending victim entry, if any. Callers that
// collect a block outside popVictim (wear leveling) must use it to keep the
// heap coherent.
func (bm *blockMgr) removeFromHeap(blk flash.BlockID) {
	if i := bm.heapIdx[blk]; i >= 0 {
		heap.Remove(&bm.victims, i)
		bm.heapIdx[blk] = -1
	}
}

// release returns an erased block to its die's free list.
func (bm *blockMgr) release(blk flash.BlockID) {
	bm.kinds[blk] = blockFree
	die := bm.chip.Config().DieOf(blk)
	bm.free[die] = append(bm.free[die], blk)
}

type victim struct {
	blk     flash.BlockID
	invalid int
}

// victimHeap is an indexed max-heap over invalid counts; bm.heapIdx tracks
// each block's position so keys can be fixed in place.
type victimHeap struct {
	items []victim
	bm    *blockMgr
}

func (h victimHeap) Len() int           { return len(h.items) }
func (h victimHeap) Less(i, j int) bool { return h.items[i].invalid > h.items[j].invalid }
func (h victimHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.bm.heapIdx[h.items[i].blk] = i
	h.bm.heapIdx[h.items[j].blk] = j
}
func (h *victimHeap) Push(x any) {
	v := x.(victim)
	h.bm.heapIdx[v.blk] = len(h.items)
	h.items = append(h.items, v)
}
func (h *victimHeap) Pop() any {
	n := len(h.items)
	v := h.items[n-1]
	h.items = h.items[:n-1]
	return v
}
