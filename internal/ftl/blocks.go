package ftl

import (
	"container/heap"

	"repro/internal/flash"
)

// blockKind tracks what an allocated block holds; garbage collection treats
// data and translation blocks differently (§3.1's Ngcd vs Ngct).
type blockKind uint8

const (
	blockFree blockKind = iota
	blockData
	blockTrans
)

// blockMgr owns physical block allocation: the free-block list, one active
// write frontier per block kind, and the greedy GC victim queue — an indexed
// max-heap on invalid-page count, re-keyed on every invalidation so popping
// always yields the fullest-of-garbage block.
type blockMgr struct {
	chip  *flash.Chip
	free  []flash.BlockID
	kinds []blockKind

	dataFrontier  flash.BlockID // -1 when no open block
	transFrontier flash.BlockID

	victims  victimHeap
	heapIdx  []int // position of each block in victims, -1 when absent
	freeHead int   // consumed prefix of free (FIFO)

	policy  GCPolicy
	tick    int64   // advances on every invalidation (cost-benefit age base)
	lastMod []int64 // tick of each block's latest invalidation
}

func newBlockMgr(chip *flash.Chip) *blockMgr {
	n := chip.Config().NumBlocks
	bm := &blockMgr{
		chip:          chip,
		free:          make([]flash.BlockID, 0, n),
		kinds:         make([]blockKind, n),
		dataFrontier:  -1,
		transFrontier: -1,
		heapIdx:       make([]int, n),
		lastMod:       make([]int64, n),
	}
	bm.victims.bm = bm
	for b := range bm.heapIdx {
		bm.heapIdx[b] = -1
	}
	// FIFO pops from the front: append ascending so low blocks allocate
	// first (reproducible layout; Format lays data out sequentially).
	for b := 0; b < n; b++ {
		bm.free = append(bm.free, flash.BlockID(b))
	}
	return bm
}

func (bm *blockMgr) freeCount() int { return len(bm.free) - bm.freeHead }

// popFree takes from the FRONT of the free list (FIFO): erased blocks
// re-enter circulation in release order, so no block idles at the bottom of
// a stack accumulating an ever-growing wear deficit.
func (bm *blockMgr) popFree() (flash.BlockID, bool) {
	if bm.freeHead >= len(bm.free) {
		return -1, false
	}
	b := bm.free[bm.freeHead]
	bm.freeHead++
	// Compact once the dead prefix dominates.
	if bm.freeHead > 64 && bm.freeHead*2 > len(bm.free) {
		bm.free = append(bm.free[:0], bm.free[bm.freeHead:]...)
		bm.freeHead = 0
	}
	return b, true
}

// alloc returns the next free page of the frontier for kind, opening a new
// block from the free list when the frontier is full. The caller is
// responsible for keeping the free list above the GC threshold.
func (bm *blockMgr) alloc(kind blockKind) (flash.PPN, error) {
	frontier := &bm.dataFrontier
	if kind == blockTrans {
		frontier = &bm.transFrontier
	}
	ppb := bm.chip.Config().PagesPerBlock
	if *frontier >= 0 && bm.chip.WritePtr(*frontier) < ppb {
		return bm.chip.PageAt(*frontier, bm.chip.WritePtr(*frontier)), nil
	}
	// The current frontier is full: retire it and open a new block. The
	// retired block is enqueued as a GC candidate only after the frontier
	// pointer moves off it — maybeEnqueue skips the active frontier, and
	// pages invalidated during its tenure must not be lost to GC.
	old := *frontier
	blk, ok := bm.popFree()
	if !ok {
		return flash.InvalidPPN, errf("out of free blocks (device full)")
	}
	bm.kinds[blk] = kind
	*frontier = blk
	if old >= 0 {
		bm.maybeEnqueue(old)
	}
	return bm.chip.PageAt(blk, 0), nil
}

// invalidate marks ppn invalid and enqueues its block as a GC candidate if
// the block is full.
func (bm *blockMgr) invalidate(ppn flash.PPN) error {
	if err := bm.chip.Invalidate(ppn); err != nil {
		return err
	}
	blk := bm.chip.Block(ppn)
	bm.tick++
	bm.lastMod[blk] = bm.tick
	bm.maybeEnqueue(blk)
	return nil
}

// maybeEnqueue inserts or re-keys blk in the victim heap when it is full,
// reclaimable and not an open frontier.
func (bm *blockMgr) maybeEnqueue(blk flash.BlockID) {
	if blk == bm.dataFrontier || blk == bm.transFrontier {
		return
	}
	if bm.kinds[blk] == blockFree {
		return
	}
	ppb := bm.chip.Config().PagesPerBlock
	if bm.chip.WritePtr(blk) < ppb {
		return // not fully programmed yet
	}
	invalid := ppb - bm.chip.ValidCount(blk)
	if invalid == 0 {
		return // nothing to reclaim
	}
	if i := bm.heapIdx[blk]; i >= 0 {
		bm.victims.items[i].invalid = invalid
		heap.Fix(&bm.victims, i)
		return
	}
	heap.Push(&bm.victims, victim{blk: blk, invalid: invalid})
}

// popVictim returns the next GC victim under the configured policy, or -1
// when no block is reclaimable.
func (bm *blockMgr) popVictim() flash.BlockID {
	if bm.policy == GCCostBenefit {
		return bm.popVictimCostBenefit()
	}
	for bm.victims.Len() > 0 {
		v := heap.Pop(&bm.victims).(victim)
		bm.heapIdx[v.blk] = -1
		if bm.chip.ValidCount(v.blk) == bm.chip.Config().PagesPerBlock {
			continue // defensive; re-keying should prevent this
		}
		return v.blk
	}
	return -1
}

// popVictimCostBenefit scans reclaimable blocks for the one maximizing the
// classic cost-benefit score age*(1-u)/(2u), where u is the valid fraction
// and age the time since the block's last invalidation. The chosen block is
// also removed from the greedy heap so the two structures stay coherent.
func (bm *blockMgr) popVictimCostBenefit() flash.BlockID {
	ppb := bm.chip.Config().PagesPerBlock
	best := flash.BlockID(-1)
	bestScore := -1.0
	for b := 0; b < len(bm.kinds); b++ {
		blk := flash.BlockID(b)
		if bm.kinds[blk] == blockFree || blk == bm.dataFrontier || blk == bm.transFrontier {
			continue
		}
		if bm.chip.WritePtr(blk) < ppb {
			continue
		}
		valid := bm.chip.ValidCount(blk)
		invalid := ppb - valid
		if invalid == 0 {
			continue
		}
		age := float64(bm.tick - bm.lastMod[blk] + 1)
		var score float64
		if valid == 0 {
			score = age * float64(ppb) * 2 // free win: prefer oldest empty block
		} else {
			u := float64(valid) / float64(ppb)
			score = age * (1 - u) / (2 * u)
		}
		if score > bestScore {
			bestScore, best = score, blk
		}
	}
	if best >= 0 {
		bm.removeFromHeap(best)
	}
	return best
}

// removeFromHeap drops blk's pending victim entry, if any. Callers that
// collect a block outside popVictim (wear leveling) must use it to keep the
// heap coherent.
func (bm *blockMgr) removeFromHeap(blk flash.BlockID) {
	if i := bm.heapIdx[blk]; i >= 0 {
		heap.Remove(&bm.victims, i)
		bm.heapIdx[blk] = -1
	}
}

// release returns an erased block to the free list.
func (bm *blockMgr) release(blk flash.BlockID) {
	bm.kinds[blk] = blockFree
	bm.free = append(bm.free, blk)
}

type victim struct {
	blk     flash.BlockID
	invalid int
}

// victimHeap is an indexed max-heap over invalid counts; bm.heapIdx tracks
// each block's position so keys can be fixed in place.
type victimHeap struct {
	items []victim
	bm    *blockMgr
}

func (h victimHeap) Len() int           { return len(h.items) }
func (h victimHeap) Less(i, j int) bool { return h.items[i].invalid > h.items[j].invalid }
func (h victimHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.bm.heapIdx[h.items[i].blk] = i
	h.bm.heapIdx[h.items[j].blk] = j
}
func (h *victimHeap) Push(x any) {
	v := x.(victim)
	h.bm.heapIdx[v.blk] = len(h.items)
	h.items = append(h.items, v)
}
func (h *victimHeap) Pop() any {
	n := len(h.items)
	v := h.items[n-1]
	h.items = h.items[:n-1]
	return v
}
