package ftl_test

// Error-propagation tests: every Translator implementation must surface
// ReadTP/WriteTP failures to its caller instead of swallowing them, and must
// be left in a sane state afterwards (invariants hold, later clean
// operations succeed). The fault-injection layer makes such failures a
// normal part of a run, so a scheme that panics or silently corrupts its
// cache on one is broken.

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/ftl/cdftl"
	"repro/internal/ftl/dftl"
	"repro/internal/ftl/sftl"
	"repro/internal/ftl/zftl"
)

var errInjected = errors.New("injected env failure")

// faultyEnv is an in-memory ftl.Env whose ReadTP/WriteTP can be made to
// fail on demand. Slot values are 1000+v*ePerTP+off so PPN 0 never appears
// as a real mapping.
type faultyEnv struct {
	ePerTP   int
	lpns     int64
	buf      []flash.PPN
	readErr  error
	writeErr error
	reads    int
	writes   int
}

func newFaultyEnv() *faultyEnv { return &faultyEnv{ePerTP: 16, lpns: 256} }

func (e *faultyEnv) EntriesPerTP() int { return e.ePerTP }
func (e *faultyEnv) NumTPs() int       { return int((e.lpns + int64(e.ePerTP) - 1) / int64(e.ePerTP)) }
func (e *faultyEnv) NumLPNs() int64    { return e.lpns }

func (e *faultyEnv) ReadTP(v ftl.VTPN) ([]flash.PPN, error) {
	if e.readErr != nil {
		return nil, e.readErr
	}
	e.reads++
	if e.buf == nil {
		e.buf = make([]flash.PPN, e.ePerTP)
	}
	for i := range e.buf {
		e.buf[i] = flash.PPN(1000 + int(v)*e.ePerTP + i)
	}
	return e.buf, nil
}

func (e *faultyEnv) WriteTP(v ftl.VTPN, updates []ftl.EntryUpdate, fullPage bool) error {
	if e.writeErr != nil {
		return e.writeErr
	}
	e.writes++
	return nil
}

func (e *faultyEnv) NoteLookup(bool)        {}
func (e *faultyEnv) NoteReplacement(bool)   {}
func (e *faultyEnv) NoteGCMapUpdate(bool)   {}
func (e *faultyEnv) NoteBatchWriteback(int) {}

// invariants runs the scheme's CheckInvariants when it has one.
func invariants(t *testing.T, tr ftl.Translator) {
	t.Helper()
	if c, ok := tr.(interface{ CheckInvariants() error }); ok {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated after env failure: %v", err)
		}
	}
}

// translatorsUnderTest returns every demand-based scheme with a tiny cache,
// so a handful of dirty updates forces writebacks.
func translatorsUnderTest() []struct {
	name string
	make func() ftl.Translator
} {
	return []struct {
		name string
		make func() ftl.Translator
	}{
		{"DFTL", func() ftl.Translator { return dftl.New(dftl.Config{CacheBytes: 64}) }},
		{"TPFTL", func() ftl.Translator { return core.New(core.DefaultConfig(64)) }},
		{"TPFTL-bare", func() ftl.Translator { return core.New(core.Config{CacheBytes: 64}) }},
		{"S-FTL", func() ftl.Translator { return sftl.New(sftl.Config{CacheBytes: 64}) }},
		{"CDFTL", func() ftl.Translator { return cdftl.New(cdftl.Config{CacheBytes: 64}) }},
		{"ZFTL", func() ftl.Translator { return zftl.New(zftl.Config{CacheBytes: 64}) }},
	}
}

func TestTranslatePropagatesReadTPError(t *testing.T) {
	for _, tc := range translatorsUnderTest() {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.make()
			env := newFaultyEnv()
			env.readErr = errInjected
			if _, err := tr.Translate(env, 5); !errors.Is(err, errInjected) {
				t.Fatalf("Translate returned %v, want the injected ReadTP error", err)
			}
			invariants(t, tr)

			// The failure must not wedge the cache: the same lookup
			// succeeds once the fault clears.
			env.readErr = nil
			ppn, err := tr.Translate(env, 5)
			if err != nil {
				t.Fatalf("Translate after fault cleared: %v", err)
			}
			if want := flash.PPN(1005); ppn != want {
				t.Fatalf("Translate after fault cleared = %d, want %d", ppn, want)
			}
			invariants(t, tr)
		})
	}
}

func TestUpdatePropagatesWriteTPError(t *testing.T) {
	for _, tc := range translatorsUnderTest() {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.make()
			env := newFaultyEnv()

			// Fill the tiny cache with dirty entries across many
			// translation pages, then arm the write fault: within a
			// bounded number of further updates a writeback must happen
			// and its error must surface.
			lpn := ftl.LPN(0)
			next := func() ftl.LPN {
				l := lpn
				lpn += ftl.LPN(env.ePerTP) // one lpn per TP: maximum eviction pressure
				if lpn >= ftl.LPN(env.lpns) {
					lpn = (lpn % ftl.LPN(env.lpns)) + 1
				}
				return l
			}
			for i := 0; i < 32; i++ {
				if err := tr.Update(env, next(), flash.PPN(2000+i)); err != nil {
					t.Fatalf("setup update %d: %v", i, err)
				}
			}
			env.writeErr = errInjected
			var got error
			for i := 0; i < 200 && got == nil; i++ {
				if err := tr.Update(env, next(), flash.PPN(3000+i)); err != nil {
					got = err
				}
			}
			if !errors.Is(got, errInjected) {
				t.Fatalf("200 dirty updates against a failing WriteTP returned %v, want the injected error", got)
			}
			invariants(t, tr)

			// Clean operation after the fault clears.
			env.writeErr = nil
			if err := tr.Update(env, next(), 4000); err != nil {
				t.Fatalf("Update after fault cleared: %v", err)
			}
			invariants(t, tr)
		})
	}
}

func TestOnGCDataMovesPropagatesWriteTPError(t *testing.T) {
	for _, tc := range translatorsUnderTest() {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.make()
			env := newFaultyEnv()
			env.writeErr = errInjected
			// The moved page's mapping is not cached, so the update must
			// go to flash — and fail.
			moves := []ftl.GCMove{{LPN: 200, OldPPN: 1200, NewPPN: 5000}}
			if err := tr.OnGCDataMoves(env, moves); !errors.Is(err, errInjected) {
				t.Fatalf("OnGCDataMoves returned %v, want the injected WriteTP error", err)
			}
			invariants(t, tr)
		})
	}
}

// TestWriteTPFailureKeepsDeviceConsistent pins the contract that makes
// clear-dirty-before-WriteTP (TPFTL §4.4 batch update) safe: Device.WriteTP
// applies the entry updates to the persisted view before any flash
// operation can fail, so a writeback that surfaces an exhausted-retry fault
// loses no mapping information and the truth/persist cross-check still
// holds.
func TestWriteTPFailureKeepsDeviceConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.FaultRetries = 2
	tr := core.New(core.DefaultConfig(cfg.CacheBytes))
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}

	// Overfill the cache with dirty entries spread over every translation
	// page, so further misses evict dirty victims and write back batches.
	for p := int64(0); p < 128; p++ {
		if _, err := d.Serve(wr(0, (p*31)%4096)); err != nil {
			t.Fatal(err)
		}
	}

	// Every program now fails: each of these writes dies either on its
	// data-page program or, when its lookup evicts a dirty victim, inside
	// the translation-page writeback — after TPFTL already cleared the
	// batch's dirty flags. The cache keeps evolving across attempts
	// (victims removed, survivors cleaned, persisted view updated), so
	// many distinct failure states get probed.
	d.Chip().SetFaultPlan(&flash.FaultPlan{ProgramProb: 1})
	failures := 0
	var sample error
	for p := int64(0); p < 64; p++ {
		if _, err := d.Serve(wr(0, (p*67+1)%4096)); err != nil {
			failures++
			sample = err
		}
	}
	if failures != 64 {
		t.Fatalf("%d of 64 writes failed under ProgramProb=1, want all", failures)
	}
	var fe *flash.FaultError
	if !errors.As(sample, &fe) {
		t.Fatalf("writes against a failing chip returned %v, want a flash.FaultError", sample)
	}
	if d.Metrics().FaultRetries < int64(cfg.FaultRetries) {
		t.Fatalf("retries %d, want at least %d before surfacing", d.Metrics().FaultRetries, cfg.FaultRetries)
	}

	// The fault clears; the device must still be fully usable and the
	// mapping consistent including dirty cached entries.
	d.Chip().SetFaultPlan(nil)
	for p := int64(0); p < 48; p++ {
		if _, err := d.Serve(wr(0, 512+p)); err != nil {
			t.Fatalf("write after fault cleared: %v", err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

// TestRetryExhaustionSurfacesCleanly drives a scheduled burst of transient
// read faults longer than the retry bound through a full device: the serve
// must fail with the fault, metrics must count every injected fault, and
// the device must remain recoverable.
func TestRetryExhaustionSurfacesCleanly(t *testing.T) {
	cfg := testConfig()
	cfg.FaultRetries = 3
	d, _ := newDFTLDevice(t, cfg)
	if _, err := d.Serve(wr(0, 7)); err != nil {
		t.Fatal(err)
	}

	// Fail read attempts 1..4 after arming: the next translation-page
	// read fails once plus three retries, exhausting the bound. Attempt 5
	// fails too, but its retry (attempt 6) succeeds — absorbed.
	d.Chip().SetFaultPlan(&flash.FaultPlan{
		FailAt: map[string][]int64{"read": {1, 2, 3, 4, 5}},
	})
	_, err := d.Serve(rd(0, 900)) // cache miss → ReadTP → chip read
	var fe *flash.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("read with exhausted retries returned %v, want a flash.FaultError", err)
	}
	m := d.Metrics()
	if m.InjectedFaults != 4 || m.FaultRetries != 3 {
		t.Fatalf("injected %d / retried %d, want 4 / 3", m.InjectedFaults, m.FaultRetries)
	}

	// The retried lookup repeats: attempt 5's scheduled fault is absorbed
	// by one retry.
	if _, err := d.Serve(rd(0, 900)); err != nil {
		t.Fatalf("read with in-bound fault: %v", err)
	}
	m = d.Metrics()
	if m.InjectedFaults != 5 || m.FaultRetries != 4 {
		t.Fatalf("after absorbed fault: injected %d / retried %d, want 5 / 4", m.InjectedFaults, m.FaultRetries)
	}
	if err := d.VerifyRecoverable(); err != nil {
		t.Fatal(err)
	}
}
