package ftl_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
)

// TestInjectedErrorsPropagate checks that chip failures injected at each
// operation kind surface as errors from Serve rather than being swallowed,
// for write paths that traverse translation-page updates and GC.
func TestInjectedErrorsPropagate(t *testing.T) {
	boom := errors.New("injected")

	t.Run("program during write", func(t *testing.T) {
		d, _ := newDFTLDevice(t, testConfig())
		d.Chip().FailNext("program", boom)
		if _, err := d.Serve(wr(0, 1)); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("read during translation miss", func(t *testing.T) {
		d, _ := newDFTLDevice(t, testConfig())
		d.Chip().FailNext("read", boom)
		// A read miss must read a translation page first: the injected
		// error hits that read.
		if _, err := d.Serve(rd(0, 700)); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("erase during GC", func(t *testing.T) {
		cfg := testConfig()
		d, _ := newDFTLDevice(t, cfg)
		// Push the device into GC territory, then inject an erase error;
		// the next GC must fail loudly.
		arrival := int64(0)
		d.Chip().FailNext("erase", boom)
		var sawErr bool
		for i := 0; i < 30000; i++ {
			arrival += int64(50 * time.Microsecond)
			if _, err := d.Serve(wr(arrival, int64(i%512))); err != nil {
				if !errors.Is(err, boom) {
					t.Fatalf("unexpected error: %v", err)
				}
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatal("erase error never surfaced despite GC pressure")
		}
	})
}

// TestEnduranceFailureSurfaces: with a tiny erase limit, a worn-out block
// eventually fails a program/erase, and the device reports it instead of
// corrupting state.
func TestEnduranceFailureSurfaces(t *testing.T) {
	cfg := testConfig()
	cfg.EraseLimit = 8
	d, _ := newDFTLDevice(t, cfg)
	arrival := int64(0)
	var failed bool
	for i := 0; i < 200000; i++ {
		arrival += int64(50 * time.Microsecond)
		if _, err := d.Serve(wr(arrival, int64(i%256))); err != nil {
			var opErr *flash.OpError
			if !errors.As(err, &opErr) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("device survived indefinitely despite erase limit 8")
	}
}

// TestGCPolicyAndWearLevelViaConfig checks the Config plumbing end to end.
func TestGCPolicyAndWearLevelViaConfig(t *testing.T) {
	cfg := testConfig()
	cfg.GCPolicy = ftl.GCCostBenefit
	cfg.WearLevelThreshold = 8
	d, tr := newDFTLDevice(t, cfg)
	arrival := int64(0)
	for i := 0; i < 30000; i++ {
		arrival += int64(50 * time.Microsecond)
		if _, err := d.Serve(wr(arrival, int64(i%512))); err != nil {
			t.Fatal(err)
		}
	}
	if d.Metrics().GCDataCollections == 0 {
		t.Fatal("no GC")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyRecoverable(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRejectsOutOfOrderTimeTravel documents the FCFS contract: requests
// with decreasing arrivals are still served (clock clamps), never panic.
func TestServeToleratesEqualArrivals(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	reqs := []trace.Request{rd(100, 1), rd(100, 2), rd(100, 3)}
	for _, r := range reqs {
		if _, err := d.Serve(r); err != nil {
			t.Fatal(err)
		}
	}
	if d.Metrics().Requests != 3 {
		t.Fatal("not all served")
	}
}
