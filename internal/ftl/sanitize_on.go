//go:build ftlsan

package ftl

import "sync/atomic"

// SanitizerEnabled reports whether this binary was built with -tags ftlsan.
// When true, every Device host operation is followed by the full invariant
// suite (chip bookkeeping, GTD/truth/persist consistency, and the
// translator's own structural checks), so a corruption is caught at the
// operation that introduced it rather than at the next test assertion.
const SanitizerEnabled = true

var sanitizerChecks atomic.Int64

// SanitizerChecks returns the number of invariant checks the sanitizer has
// executed so far in this process. Tests use it to prove the per-operation
// hooks actually ran.
func SanitizerChecks() int64 { return sanitizerChecks.Load() }

// SanitizeCheck runs each check and wraps the first failure with the
// component name. It is the single funnel every ftlsan hook goes through.
func SanitizeCheck(component string, checks ...func() error) error {
	for _, check := range checks {
		sanitizerChecks.Add(1)
		if err := check(); err != nil {
			return errf("ftlsan[%s]: %w", component, err)
		}
	}
	return nil
}
