//go:build !ftlsan

package ftl

// SanitizerEnabled reports whether this binary was built with -tags ftlsan.
// In the default build it is a constant false, so every `if SanitizerEnabled`
// guard — and the O(pages) invariant walks behind it — compiles away.
const SanitizerEnabled = false

// SanitizerChecks returns the number of invariant checks executed; always
// zero without -tags ftlsan.
func SanitizerChecks() int64 { return 0 }

// SanitizeCheck is a no-op without -tags ftlsan.
func SanitizeCheck(string, ...func() error) error { return nil }
