package cdftl

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func deviceConfig(cacheBytes int64) ftl.Config {
	return ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    cacheBytes,
	}
}

func newDevice(t *testing.T, cacheBytes int64) (*ftl.Device, *FTL) {
	t.Helper()
	tr := New(Config{CacheBytes: cacheBytes})
	d, err := ftl.NewDevice(deviceConfig(cacheBytes), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestCapacitySplit(t *testing.T) {
	tr := New(Config{CacheBytes: 16 << 10})
	if tr.cmtCap != 1024 { // 8 KB / 8 B
		t.Fatalf("cmtCap = %d, want 1024", tr.cmtCap)
	}
	if tr.ctpCap != 1 { // 8 KB / (4 KB + 8) → 1 (floor), min 1
		t.Fatalf("ctpCap = %d, want 1", tr.ctpCap)
	}
	big := New(Config{CacheBytes: 256 << 10})
	if big.ctpCap < 16 {
		t.Fatalf("ctpCap = %d for 256 KB, want ≥16", big.ctpCap)
	}
}

func TestCTPServesSecondLevelHits(t *testing.T) {
	d, tr := newDevice(t, 16<<10)
	if _, err := d.Serve(rd(0, 100)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.TransReadsAT != 1 || m.Hits != 0 {
		t.Fatalf("first miss: reads %d hits %d", m.TransReadsAT, m.Hits)
	}
	// A different entry of the same translation page: CTP hit, no read.
	if _, err := d.Serve(rd(1e9, 101)); err != nil {
		t.Fatal(err)
	}
	m = d.Metrics()
	if m.TransReadsAT != 1 {
		t.Fatalf("CTP hit still read flash (reads=%d)", m.TransReadsAT)
	}
	if m.Hits != 1 {
		t.Fatalf("hits = %d, want 1", m.Hits)
	}
	if tr.CMTLen() != 2 || tr.CTPLen() != 1 {
		t.Fatalf("CMT %d CTP %d", tr.CMTLen(), tr.CTPLen())
	}
}

func TestDirtyCMTEvictionFoldsIntoCTP(t *testing.T) {
	// Small CMT (4 entries), CTP present: dirty CMT victims fold into the
	// cached page with no flash write.
	tr := New(Config{CacheBytes: 16 << 10, CMTFraction: 0.002}) // cmtCap clamps to 4
	d, err := ftl.NewDevice(deviceConfig(16<<10), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	if tr.cmtCap != 4 {
		t.Fatalf("cmtCap = %d, want clamp 4", tr.cmtCap)
	}
	arrival := int64(0)
	for i := int64(0); i < 12; i++ { // all within vtpn 0, which lands in CTP
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	m := d.Metrics()
	if m.TransWritesAT != 0 {
		t.Fatalf("dirty CMT evictions wrote flash %d times despite CTP residency", m.TransWritesAT)
	}
	if m.Replacements == 0 {
		t.Fatal("no replacements recorded")
	}
	// The folded entries live in the CTP page as dirty.
	s := tr.Snapshot()
	if s.DirtyEntries == 0 {
		t.Fatal("no dirty entries after folds")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestCTPEvictionWritesWholePage(t *testing.T) {
	d, tr := newDevice(t, 16<<10) // ctpCap = 1
	arrival := int64(0)
	// Dirty page 0 via CMT folds, then touch vtpn 1 to evict the CTP page.
	for i := int64(0); i < 8; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	// Make the folds happen: push them out of CMT... CMT is large here, so
	// dirty entries may still be level-1 only. Force CTP turnover:
	if _, err := d.Serve(rd(arrival, 1024)); err != nil {
		t.Fatal(err)
	}
	if tr.CTPLen() != 1 {
		t.Fatalf("CTPLen = %d, want 1", tr.CTPLen())
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsConsistency(t *testing.T) {
	for _, seed := range []int64{31, 32} {
		tr := New(Config{CacheBytes: 6 << 10, CMTFraction: 0.3})
		d, err := ftl.NewDevice(deviceConfig(6<<10), tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Format(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		arrival := int64(0)
		for batch := 0; batch < 15; batch++ {
			for i := 0; i < 300; i++ {
				page := int64(rng.Intn(4096))
				n := int64(1 + rng.Intn(4))
				if page+n > 4096 {
					n = 4096 - page
				}
				arrival += int64(rng.Intn(300_000))
				req := trace.Request{
					Arrival: arrival, Offset: page * 4096, Length: n * 4096,
					Op: opOf(rng.Intn(2) == 0),
				}
				if _, err := d.Serve(req); err != nil {
					t.Fatalf("seed %d batch %d op %d: %v", seed, batch, i, err)
				}
			}
			if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
		}
	}
}

func TestSnapshotAndDirty(t *testing.T) {
	d, tr := newDevice(t, 16<<10)
	arrival := int64(0)
	for i := int64(0); i < 5; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	s := tr.Snapshot()
	if s.DirtyEntries < 5 {
		t.Fatalf("dirty = %d, want ≥5", s.DirtyEntries)
	}
	for lpn, ppn := range tr.DirtyCached() {
		if d.Truth(lpn) != ppn {
			t.Fatalf("dirty entry %d stale", lpn)
		}
	}
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
