// Package cdftl implements CDFTL (Qin et al., RTAS 2011), the two-level
// caching baseline discussed in the TPFTL paper (§2.2; excluded from the
// paper's figures because S-FTL dominated it, but implemented here for
// completeness).
//
// CDFTL splits the budget between a first-level CMT — individual mapping
// entries in an LRU list, as in DFTL — and a second-level CTP that caches a
// few whole translation pages and doubles as the CMT's kick-out buffer:
// a dirty entry evicted from the CMT is folded into its CTP page when that
// page is cached (no flash operation), and dirty entries whose pages are
// absent from the CTP are skipped over by the CMT's victim search, so cold
// dirty entries accumulate in the CMT rather than causing per-entry
// writebacks.
package cdftl

import (
	"sort"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
)

// Config tunes CDFTL.
type Config struct {
	// CacheBytes is the total budget.
	CacheBytes int64
	// CMTFraction of the budget feeds the entry-level cache (default 0.5);
	// the rest holds whole translation pages in the CTP.
	CMTFraction float64
	// EntryBytes is the RAM cost per CMT entry (default 8).
	EntryBytes int
	// PageBytes is the RAM cost per CTP page (default raw: 4 KB + header).
	PageBytes int64
}

type cmtEntry struct {
	node  lru.Node[*cmtEntry]
	lpn   ftl.LPN
	ppn   flash.PPN
	dirty bool
}

type ctpPage struct {
	node  lru.Node[*ctpPage]
	vtpn  ftl.VTPN
	vals  []flash.PPN
	dirty map[int32]struct{}
}

// FTL is the CDFTL translator. Create with New.
type FTL struct {
	cfg    Config
	cmtCap int // max CMT entries
	ctpCap int // max CTP pages

	cmt    map[ftl.LPN]*cmtEntry
	cmtLRU lru.List[*cmtEntry]

	ctp    map[ftl.VTPN]*ctpPage
	ctpLRU lru.List[*ctpPage]

	ePerTP int
}

var _ ftl.Translator = (*FTL)(nil)
var _ ftl.Inspector = (*FTL)(nil)

// New returns a CDFTL instance.
func New(cfg Config) *FTL {
	if cfg.CMTFraction == 0 {
		cfg.CMTFraction = 0.5
	}
	if cfg.EntryBytes == 0 {
		cfg.EntryBytes = ftl.EntryBytesRAM
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = ftl.DefaultPageBytes + 8
	}
	cmtBytes := int64(float64(cfg.CacheBytes) * cfg.CMTFraction)
	cmtCap := int(cmtBytes / int64(cfg.EntryBytes))
	if cmtCap < 4 {
		cmtCap = 4
	}
	ctpCap := int((cfg.CacheBytes - cmtBytes) / cfg.PageBytes)
	if ctpCap < 1 {
		ctpCap = 1
	}
	return &FTL{
		cfg:    cfg,
		cmtCap: cmtCap,
		ctpCap: ctpCap,
		cmt:    make(map[ftl.LPN]*cmtEntry),
		ctp:    make(map[ftl.VTPN]*ctpPage),
		ePerTP: ftl.DefaultEntriesPerTP,
	}
}

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "CDFTL" }

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {}

// CMTLen returns the number of first-level entries.
func (f *FTL) CMTLen() int { return len(f.cmt) }

// CTPLen returns the number of second-level pages.
func (f *FTL) CTPLen() int { return len(f.ctp) }

// Translate implements ftl.Translator.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	if e, ok := f.cmt[lpn]; ok {
		env.NoteLookup(true)
		f.cmtLRU.MoveToFront(&e.node)
		return e.ppn, nil
	}
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if p, ok := f.ctp[v]; ok {
		// Second-level hit: promote the entry into the CMT without any
		// flash operation. Space is reserved before the value is read:
		// the reservation's writebacks can trigger GC, which updates the
		// CTP page in place.
		env.NoteLookup(true)
		f.ctpLRU.MoveToFront(&p.node)
		if err := f.reserveCMT(env); err != nil {
			return flash.InvalidPPN, err
		}
		ppn := p.vals[off]
		f.addCMT(lpn, ppn, false)
		return ppn, nil
	}
	env.NoteLookup(false)
	if err := f.reserveCMT(env); err != nil {
		return flash.InvalidPPN, err
	}
	p, err := f.loadCTP(env, v)
	if err != nil {
		return flash.InvalidPPN, err
	}
	ppn := p.vals[off]
	f.addCMT(lpn, ppn, false)
	return ppn, nil
}

// loadCTP reads translation page v into the second-level cache.
func (f *FTL) loadCTP(env ftl.Env, v ftl.VTPN) (*ctpPage, error) {
	for len(f.ctp) >= f.ctpCap {
		if err := f.evictCTP(env); err != nil {
			return nil, err
		}
	}
	vals, err := env.ReadTP(v)
	if err != nil {
		return nil, err
	}
	// The cached translation page holds every entry while one was demanded;
	// the remainder counts as prefetched for the phase attribution.
	if pf, ok := env.(interface{ NotePrefetch(int) }); ok {
		pf.NotePrefetch(len(vals) - 1)
	}
	p := &ctpPage{
		vtpn:  v,
		vals:  make([]flash.PPN, len(vals)),
		dirty: make(map[int32]struct{}),
	}
	copy(p.vals, vals)
	p.node.Value = p
	f.ctp[v] = p
	f.ctpLRU.PushFront(&p.node)
	return p, nil
}

// evictCTP evicts the LRU second-level page, writing it back whole when
// dirty (full-page write, no prior read).
func (f *FTL) evictCTP(env ftl.Env) error {
	n := f.ctpLRU.Back()
	if n == nil {
		return nil
	}
	p := n.Value
	f.ctpLRU.Remove(n)
	delete(f.ctp, p.vtpn)
	env.NoteReplacement(len(p.dirty) > 0)
	if len(p.dirty) == 0 {
		return nil
	}
	numLPNs := env.NumLPNs()
	base := int64(p.vtpn) * int64(f.ePerTP)
	updates := make([]ftl.EntryUpdate, 0, len(p.dirty))
	for off := range p.dirty {
		if base+int64(off) >= numLPNs {
			continue
		}
		updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
	}
	ftl.SortUpdates(updates)
	env.NoteBatchWriteback(len(updates) - 1)
	return env.WriteTP(p.vtpn, updates, true)
}

// reserveCMT evicts first-level entries until one slot is free.
func (f *FTL) reserveCMT(env ftl.Env) error {
	for len(f.cmt) >= f.cmtCap {
		if err := f.evictCMT(env); err != nil {
			return err
		}
	}
	return nil
}

// addCMT inserts an entry into the first level; the caller must have
// reserved space.
func (f *FTL) addCMT(lpn ftl.LPN, ppn flash.PPN, dirty bool) {
	e := &cmtEntry{lpn: lpn, ppn: ppn, dirty: dirty}
	e.node.Value = e
	f.cmt[lpn] = e
	f.cmtLRU.PushFront(&e.node)
}

// evictCMT picks the CMT victim: the LRU entry that is clean or whose page
// is in the CTP ("replacements of dirty entries only occur in CTP"); if
// every entry is a cold dirty one, the LRU dirty entry is written back
// directly as a fallback so progress is always possible.
func (f *FTL) evictCMT(env ftl.Env) error {
	var victim *cmtEntry
	for n := f.cmtLRU.Back(); n != nil; n = n.Prev() {
		e := n.Value
		if !e.dirty {
			victim = e
			break
		}
		if _, ok := f.ctp[ftl.VTPNOf(e.lpn, f.ePerTP)]; ok {
			victim = e
			break
		}
	}
	forced := false
	if victim == nil {
		victim = f.cmtLRU.Back().Value
		forced = true
	}
	f.cmtLRU.Remove(&victim.node)
	delete(f.cmt, victim.lpn)
	env.NoteReplacement(victim.dirty)
	if !victim.dirty {
		return nil
	}
	v := ftl.VTPNOf(victim.lpn, f.ePerTP)
	off := int32(ftl.OffOf(victim.lpn, f.ePerTP))
	if p, ok := f.ctp[v]; ok && !forced {
		// Fold into the cached page: deferred, no flash operation.
		p.vals[off] = victim.ppn
		p.dirty[off] = struct{}{}
		return nil
	}
	up := []ftl.EntryUpdate{{Off: int(off), PPN: victim.ppn}}
	return env.WriteTP(v, up, false)
}

// Update implements ftl.Translator.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.ePerTP = env.EntriesPerTP()
	if e, ok := f.cmt[lpn]; ok {
		e.ppn = ppn
		e.dirty = true
		f.cmtLRU.MoveToFront(&e.node)
		return nil
	}
	if err := f.reserveCMT(env); err != nil {
		return err
	}
	f.addCMT(lpn, ppn, true)
	return nil
}

// Discard implements ftl.Translator: drop the trimmed page's CMT entry and
// clear its CTP slot in RAM. The CTP slot is set to InvalidPPN with the
// dirty mark removed so no later writeback resurrects the dead mapping (the
// device rewrites the translation page itself as part of the discard).
func (f *FTL) Discard(lpn ftl.LPN) {
	if e, ok := f.cmt[lpn]; ok {
		f.cmtLRU.Remove(&e.node)
		delete(f.cmt, lpn)
	}
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if p, ok := f.ctp[v]; ok {
		p.vals[off] = flash.InvalidPPN
		delete(p.dirty, off)
	}
}

// FlushDirty implements ftl.Translator: a host flush barrier forces every
// dirty entry in both levels to flash. Dirty CMT entries whose page is in
// the CTP fold into it first (the normal kick-out path, minus the flash
// cost); each dirty CTP page then writes back whole, and remaining cold
// dirty CMT entries group into one read-modify-write per translation page.
// Pages flush in ascending VTPN order for determinism.
func (f *FTL) FlushDirty(env ftl.Env) error {
	f.ePerTP = env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for lpn, e := range f.cmt {
		if !e.dirty {
			continue
		}
		v := ftl.VTPNOf(lpn, f.ePerTP)
		off := int32(ftl.OffOf(lpn, f.ePerTP))
		if p, ok := f.ctp[v]; ok {
			p.vals[off] = e.ppn
			p.dirty[off] = struct{}{}
		} else {
			pending[v] = append(pending[v], ftl.EntryUpdate{Off: int(off), PPN: e.ppn})
		}
		e.dirty = false
	}
	dirtyPages := make([]*ctpPage, 0, len(f.ctp))
	for _, p := range f.ctp {
		if len(p.dirty) > 0 {
			dirtyPages = append(dirtyPages, p)
		}
	}
	sort.Slice(dirtyPages, func(i, j int) bool { return dirtyPages[i].vtpn < dirtyPages[j].vtpn })
	numLPNs := env.NumLPNs()
	for _, p := range dirtyPages {
		// Capture and clear the marks BEFORE the write: a GC triggered by
		// it refreshes this cached page in place and must leave its marks
		// dirty again, not have them wiped afterwards.
		base := int64(p.vtpn) * int64(f.ePerTP)
		updates := make([]ftl.EntryUpdate, 0, len(p.dirty))
		for off := range p.dirty {
			if base+int64(off) >= numLPNs {
				continue
			}
			updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
		}
		ftl.SortUpdates(updates)
		p.dirty = make(map[int32]struct{})
		env.NoteBatchWriteback(len(updates) - 1)
		if err := env.WriteTP(p.vtpn, updates, true); err != nil {
			return err
		}
	}
	for _, v := range ftl.SortedVTPNs(pending) {
		ups := pending[v]
		ftl.SortUpdates(ups)
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// OnGCDataMoves implements ftl.Translator.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	f.ePerTP = env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for _, mv := range moves {
		v := ftl.VTPNOf(mv.LPN, f.ePerTP)
		off := int32(ftl.OffOf(mv.LPN, f.ePerTP))
		if e, ok := f.cmt[mv.LPN]; ok {
			e.ppn = mv.NewPPN
			e.dirty = true
			env.NoteGCMapUpdate(true)
			continue
		}
		if p, ok := f.ctp[v]; ok {
			p.vals[off] = mv.NewPPN
			p.dirty[off] = struct{}{}
			env.NoteGCMapUpdate(true)
			continue
		}
		env.NoteGCMapUpdate(false)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: int(off), PPN: mv.NewPPN})
	}
	for _, v := range ftl.SortedVTPNs(pending) {
		if err := env.WriteTP(v, pending[v], false); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements ftl.Inspector.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	s := ftl.CacheSnapshot{DirtyPerPage: map[ftl.VTPN]int{}}
	for lpn, e := range f.cmt {
		s.Entries++
		v := ftl.VTPNOf(lpn, f.ePerTP)
		if _, ok := s.DirtyPerPage[v]; !ok {
			s.DirtyPerPage[v] = 0
		}
		if e.dirty {
			s.DirtyEntries++
			s.DirtyPerPage[v]++
		}
	}
	for v, p := range f.ctp {
		s.Entries += len(p.vals)
		s.DirtyEntries += len(p.dirty)
		s.DirtyPerPage[v] += len(p.dirty)
	}
	s.TPNodes = len(s.DirtyPerPage)
	s.UsedBytes = int64(len(f.cmt))*int64(f.cfg.EntryBytes) + int64(len(f.ctp))*f.cfg.PageBytes
	return s
}

// DirtyCached returns dirty entries for Device.CheckConsistency. When an LPN
// is dirty in both levels, the CMT value is the authoritative (newest) one.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for v, p := range f.ctp {
		for off := range p.dirty {
			out[ftl.LPNAt(v, int(off), f.ePerTP)] = p.vals[off]
		}
	}
	for lpn, e := range f.cmt {
		if e.dirty {
			out[lpn] = e.ppn
		}
	}
	return out
}
