package ftl

import (
	"repro/internal/flash"
)

// RecoveredState is the mapping rebuilt by a crash-recovery scan.
type RecoveredState struct {
	// Truth is the reconstructed LPN→PPN mapping.
	Truth []flash.PPN
	// GTD is the reconstructed VTPN→physical translation page directory.
	GTD []flash.PPN
	// ScannedPages counts the physical pages examined (the recovery cost
	// a real device pays at mount time: one OOB read per programmed page).
	ScannedPages int64
}

// RecoverMapping simulates power-failure recovery: it rebuilds the complete
// logical-to-physical mapping and the global translation directory from
// nothing but the per-page out-of-band metadata (logical tag + program
// sequence number), exactly as a demand-based FTL must after losing its RAM
// — including every dirty mapping-cache entry that never reached a
// translation page.
//
// For each logical page (and each translation page), the programmed
// physical page with the highest sequence number is the live version; any
// older duplicates are garbage from before the crash. The paper's §1 cites
// vulnerability to power failure as a reason to keep the RAM mapping cache
// small; this scan is the recovery path that makes that safe.
//
// Tests compare the recovered state against the device's live state: they
// must agree exactly, proving the OOB metadata alone always suffices.
func (d *Device) RecoverMapping() (*RecoveredState, error) {
	rs := &RecoveredState{
		Truth: make([]flash.PPN, d.logicalPages),
		GTD:   make([]flash.PPN, d.numTPs),
	}
	truthSeq := make([]int64, d.logicalPages)
	gtdSeq := make([]int64, d.numTPs)
	for i := range rs.Truth {
		rs.Truth[i] = flash.InvalidPPN
		truthSeq[i] = -1
	}
	for i := range rs.GTD {
		rs.GTD[i] = flash.InvalidPPN
		gtdSeq[i] = -1
	}

	cfg := d.chip.Config()
	for b := 0; b < cfg.NumBlocks; b++ {
		blk := flash.BlockID(b)
		for off := 0; off < cfg.PagesPerBlock; off++ {
			ppn := d.chip.PageAt(blk, off)
			// A real scan cannot distinguish "valid" from "superseded":
			// both are programmed. Only erased pages are skipped.
			if d.chip.State(ppn) == flash.PageFree {
				continue
			}
			rs.ScannedPages++
			m := d.chip.MetaOf(ppn)
			switch m.Kind {
			case flash.KindData:
				lpn := m.Tag
				if lpn < 0 || lpn >= d.logicalPages {
					return nil, errf("recovery: data page %d tagged with lpn %d out of range", ppn, lpn)
				}
				if m.Seq > truthSeq[lpn] {
					truthSeq[lpn] = m.Seq
					rs.Truth[lpn] = ppn
				}
			case flash.KindTranslation:
				v := m.Tag
				if v < 0 || v >= int64(d.numTPs) {
					return nil, errf("recovery: translation page %d tagged with vtpn %d out of range", ppn, v)
				}
				if m.Seq > gtdSeq[v] {
					gtdSeq[v] = m.Seq
					rs.GTD[v] = ppn
				}
			default:
				return nil, errf("recovery: page %d has kind %v", ppn, m.Kind)
			}
		}
	}

	// TRIM demotion: a discard leaves the old data page programmed — OOB
	// alone would resurrect it. The discard's durable record is the
	// translation-page rewrite that cleared the slot, so whenever the
	// newest translation page of lpn's TP is fresher than the newest data
	// page tagged lpn AND that page's slot for lpn is unmapped, the data
	// page is pre-trim garbage. A real scan reads the slot from the
	// translation page content itself; the simulator models translation
	// page content in persist, which is mutated to InvalidPPN only after a
	// trim's rewrite succeeded, and every translation-page program folds
	// pending live mappings into its content first (foldTPPersist) — so
	// "newer TP + unmapped slot" can never misfire on a mapping whose
	// writeback was merely pending.
	for lpn := int64(0); lpn < d.logicalPages; lpn++ {
		if rs.Truth[lpn] == flash.InvalidPPN {
			continue
		}
		v := int64(VTPNOf(LPN(lpn), d.entriesPerTP))
		if gtdSeq[v] > truthSeq[lpn] && d.persist[lpn] == flash.InvalidPPN {
			rs.Truth[lpn] = flash.InvalidPPN
		}
	}
	return rs, nil
}

// VerifyRecoverable runs a recovery scan and checks it reproduces the
// device's live mapping exactly; any divergence means the on-flash metadata
// would not survive a power failure.
func (d *Device) VerifyRecoverable() error {
	rs, err := d.RecoverMapping()
	if err != nil {
		return err
	}
	for lpn := int64(0); lpn < d.logicalPages; lpn++ {
		if rs.Truth[lpn] != d.truth[lpn] {
			return errf("recovery: lpn %d rebuilt as %d, live %d", lpn, rs.Truth[lpn], d.truth[lpn])
		}
	}
	for v := 0; v < d.numTPs; v++ {
		if rs.GTD[v] != d.gtd[v] {
			return errf("recovery: vtpn %d rebuilt as %d, live %d", v, rs.GTD[v], d.gtd[v])
		}
	}
	return nil
}
