package ftl_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/trace"
)

func TestRecoverFreshFormat(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	rs, err := d.RecoverMapping()
	if err != nil {
		t.Fatal(err)
	}
	if rs.ScannedPages == 0 {
		t.Fatal("nothing scanned")
	}
	if err := d.VerifyRecoverable(); err != nil {
		t.Fatal(err)
	}
	_ = rs
}

// TestRecoverAfterWorkload is the central crash-consistency property: after
// an arbitrary workload with GC, wear leveling and dirty cache entries in
// flight, a scan of nothing but the per-page OOB metadata reconstructs the
// exact live mapping — including mappings whose only record is a data
// page's own metadata because the dirty cache entry never reached a
// translation page.
func TestRecoverAfterWorkload(t *testing.T) {
	for _, scheme := range []string{"DFTL", "TPFTL"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := testConfig()
			cfg.WearLevelThreshold = 16
			var tr ftl.Translator
			if scheme == "DFTL" {
				tr = dftl.New(dftl.Config{CacheBytes: cfg.CacheBytes})
			} else {
				tr = core.New(core.DefaultConfig(cfg.CacheBytes))
			}
			d, err := ftl.NewDevice(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Format(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			arrival := int64(0)
			for i := 0; i < 15000; i++ {
				page := int64(rng.Intn(4096))
				arrival += int64(rng.Intn(100_000))
				req := trace.Request{
					Arrival: arrival, Offset: page * 4096, Length: 4096,
					Op: opOf(rng.Intn(4) > 0),
				}
				if _, err := d.Serve(req); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				// Crash at arbitrary points: recovery must always succeed.
				if i%2500 == 0 {
					if err := d.VerifyRecoverable(); err != nil {
						t.Fatalf("after op %d: %v", i, err)
					}
				}
			}
			if err := d.VerifyRecoverable(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryDetectsDivergence sanity-checks the checker itself: recovery
// output must really be compared against live state (a recovered map is a
// full copy, not an alias).
func TestRecoveryDetectsDivergence(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	rs, err := d.RecoverMapping()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the recovered copy must not affect the device.
	rs.Truth[0] = 999999
	if err := d.VerifyRecoverable(); err != nil {
		t.Fatal("recovered state aliased device state")
	}
}

// TestRecoveryScanCost: the scan touches every programmed page — the mount
// cost that motivates real FTLs to journal; the count is exposed for the
// harness.
func TestRecoveryScanCost(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	rs, err := d.RecoverMapping()
	if err != nil {
		t.Fatal(err)
	}
	// Freshly formatted: logical pages + translation pages programmed.
	want := d.Config().LogicalPages() + int64(d.NumTPs())
	if rs.ScannedPages != want {
		t.Fatalf("scanned %d, want %d", rs.ScannedPages, want)
	}
}

