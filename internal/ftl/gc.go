package ftl

import (
	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/obs/live"
)

// maybeGC runs garbage collection until the free-block count exceeds the
// configured threshold. It is a no-op while GC itself is running (migrations
// allocate pages; recursing would deadlock the free-list accounting).
func (d *Device) maybeGC() error {
	if d.inGC {
		return nil
	}
	threshold := d.cfg.gcThreshold()
	if d.bm.freeCount() > threshold {
		return nil
	}
	d.inGC = true
	prevPhase := d.ph
	d.ph = phaseGC
	defer func() {
		d.inGC = false
		d.ph = prevPhase
	}()
	for d.bm.freeCount() <= threshold {
		victim := d.bm.popVictim()
		if victim < 0 {
			return errf("GC: no reclaimable block (free %d ≤ threshold %d)",
				d.bm.freeCount(), threshold)
		}
		if err := d.collect(victim); err != nil {
			return err
		}
	}
	if d.cfg.WearLevelThreshold > 0 {
		if err := d.maybeWearLevel(); err != nil {
			return err
		}
	}
	return nil
}

// maybeWearLevel performs static wear leveling: while the erase-count
// spread exceeds the configured threshold, the coldest full block's content
// is migrated to the write frontier and the block erased, so cold data
// stops pinning low-wear blocks out of circulation.
func (d *Device) maybeWearLevel() error {
	ppb := d.cfg.PagesPerBlock
	for {
		minBlk, minErase, maxErase := flash.BlockID(-1), int(^uint(0)>>1), 0
		for b := 0; b < d.chip.Config().NumBlocks; b++ {
			blk := flash.BlockID(b)
			ec := d.chip.EraseCount(blk)
			if ec > maxErase {
				maxErase = ec
			}
			if ec < minErase && d.bm.kinds[blk] != blockFree &&
				!d.bm.isFrontier(blk) &&
				d.chip.WritePtr(blk) == ppb {
				minErase = ec
				minBlk = blk
			}
		}
		if minBlk < 0 || maxErase-minErase <= d.cfg.WearLevelThreshold {
			return nil
		}
		// A leveling move consumes frontier space (the migrated pages plus
		// their mapping updates) and frees only the cold block; keep free
		// headroom by reclaiming a regular victim first — and rescan, since
		// that victim may have been the chosen cold block. Stop leveling
		// when no victim is available rather than running the device dry.
		if d.bm.freeCount() <= d.cfg.gcThreshold()+2 {
			victim := d.bm.popVictim()
			if victim < 0 {
				return nil
			}
			if err := d.collect(victim); err != nil {
				return err
			}
			continue
		}
		d.bm.removeFromHeap(minBlk)
		if err := d.collect(minBlk); err != nil {
			return err
		}
		d.m.WearLevelMoves++
		if c := d.live; c != nil {
			c.Recorder().Append(live.Record{
				SimNS:      int64(d.sched.Now()),
				Kind:       live.KindWearLevel,
				Off:        int64(minBlk),
				CompleteNS: int64(d.sched.Now()),
			})
		}
	}
}

// collect reclaims one victim block: migrate its valid pages, update the
// affected mappings (via the Translator for data pages, the GTD for
// translation pages), erase it and return it to the free list.
func (d *Device) collect(blk flash.BlockID) error {
	kind := d.bm.kinds[blk]
	ppb := d.cfg.PagesPerBlock
	validCount := d.chip.ValidCount(blk)

	var moves []GCMove
	for off := 0; off < ppb; off++ {
		ppn := d.chip.PageAt(blk, off)
		if d.chip.State(ppn) != flash.PageValid {
			continue
		}
		meta := d.chip.MetaOf(ppn)
		switch meta.Kind {
		case flash.KindData:
			lpn := LPN(meta.Tag)
			if d.truth[lpn] != ppn {
				return errf("GC: stale meta: lpn %d maps to %d, victim page %d", lpn, d.truth[lpn], ppn)
			}
			newPPN, err := d.migratePage(ppn, meta)
			if err != nil {
				return err
			}
			d.truth[lpn] = newPPN
			d.m.GCDataMigrations++
			moves = append(moves, GCMove{LPN: lpn, OldPPN: ppn, NewPPN: newPPN})
		case flash.KindTranslation:
			v := VTPN(meta.Tag)
			if d.gtd[v] != ppn {
				return errf("GC: stale meta: vtpn %d maps to %d, victim page %d", v, d.gtd[v], ppn)
			}
			newPPN, err := d.migratePage(ppn, meta)
			if err != nil {
				return err
			}
			d.gtd[v] = newPPN
			d.foldTPPersist(v)
			d.m.GCTransMigrations++
		default:
			return errf("GC: page %d has kind %v", ppn, meta.Kind)
		}
	}

	if len(moves) > 0 {
		// The migrated data pages' mapping entries must be updated; the
		// Translator batches updates sharing a translation page (all
		// schemes inherit DFTL's GC-time batch update).
		if err := d.tr.OnGCDataMoves(d, moves); err != nil {
			return err
		}
	}

	lat, err := d.chipErase(blk)
	if err != nil {
		return err
	}
	d.issueBlock(blk, lat, obs.OpErase)
	d.m.FlashErases++
	recKind := live.KindGCData
	switch kind {
	case blockData:
		d.m.GCDataCollections++
		d.m.GCDataValidSum += int64(validCount)
	case blockTrans:
		d.m.GCTransCollections++
		d.m.GCTransValidSum += int64(validCount)
		recKind = live.KindGCTrans
	default:
		return errf("GC: victim %d has kind %v", blk, kind)
	}
	d.bm.release(blk)
	if c := d.live; c != nil {
		// One scheduler event per collection in the flight recorder: the
		// victim block and how many valid pages it forced us to migrate.
		c.Recorder().Append(live.Record{
			SimNS:      int64(d.sched.Now()),
			Kind:       recKind,
			Off:        int64(blk),
			N:          int64(validCount),
			CompleteNS: int64(d.sched.Now()),
		})
	}
	return nil
}

// migratePage copies one valid page to the write frontier of its kind
// (read + program) and invalidates the original.
func (d *Device) migratePage(ppn flash.PPN, meta flash.Meta) (flash.PPN, error) {
	kind := blockData
	readOp, progOp := obs.OpDataRead, obs.OpDataProgram
	if meta.Kind == flash.KindTranslation {
		kind = blockTrans
		readOp, progOp = obs.OpTransRead, obs.OpTransProgram
	}
	lat, err := d.chipRead(ppn)
	if err != nil {
		return flash.InvalidPPN, err
	}
	d.issuePage(ppn, lat, readOp)
	d.m.FlashReads++
	newPPN, err := d.bm.alloc(kind)
	if err != nil {
		return flash.InvalidPPN, err
	}
	// The migrated copy is the newer physical version of the same logical
	// page; a fresh sequence number lets crash recovery prefer it.
	meta.Seq = d.nextSeq()
	lat, err = d.chipProgram(newPPN, meta)
	if err != nil {
		return flash.InvalidPPN, err
	}
	d.issuePage(newPPN, lat, progOp)
	d.m.FlashPrograms++
	// Invalidate directly on the chip: the old page is inside the victim
	// block being collected, which must not re-enter the GC candidate heap.
	if err := d.chip.Invalidate(ppn); err != nil {
		return flash.InvalidPPN, err
	}
	return newPPN, nil
}
