// Package ftl provides the demand-based page-level FTL framework shared by
// every FTL scheme in this repository.
//
// The framework implements everything a scheme does NOT differentiate on:
// the SSD device model (flash geometry, over-provisioning, block allocation
// with separate data and translation write frontiers, greedy garbage
// collection for both block kinds), the on-flash mapping table (translation
// pages addressed through the RAM-resident global translation directory),
// request splitting and FCFS queuing-inclusive timing, and the full metrics
// accounting the TPFTL paper's evaluation reports.
//
// A scheme — DFTL, S-FTL, CDFTL, TPFTL, the optimal FTL — supplies only its
// mapping-cache policy by implementing Translator. The device verifies every
// translated read against a ground-truth table, so a policy bug surfaces as
// a hard error rather than silently skewed statistics.
package ftl

import (
	"fmt"
	"sort"

	"repro/internal/flash"
)

// LPN is a logical page number.
type LPN int64

// VTPN is a virtual translation page number: LPN / EntriesPerTP.
type VTPN int32

// EntryBytesInFlash is the size of one mapping entry inside a translation
// page. Only the PPN is stored; the LPN is implied by the entry's offset
// (§3.2 of the paper).
const EntryBytesInFlash = 4

// EntryBytesRAM is the cache cost of one uncompressed mapping entry
// (4 B LPN + 4 B PPN), DFTL's unit.
const EntryBytesRAM = 8

// GCMove describes one valid data page migrated by garbage collection.
type GCMove struct {
	LPN    LPN
	OldPPN flash.PPN
	NewPPN flash.PPN
}

// EntryUpdate is one slot modification applied to a translation page.
type EntryUpdate struct {
	Off int // entry offset within the translation page
	PPN flash.PPN
}

// SortUpdates orders updates by ascending slot offset, giving batched
// writebacks a deterministic entry order regardless of map iteration.
func SortUpdates(ups []EntryUpdate) {
	sort.Slice(ups, func(i, j int) bool { return ups[i].Off < ups[j].Off })
}

// SortedVTPNs returns the map's keys in ascending order, so multi-page
// writebacks (flush barriers, GC batches) visit translation pages
// deterministically.
func SortedVTPNs[V any](m map[VTPN]V) []VTPN {
	keys := make([]VTPN, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Translator is the mapping-cache policy of one FTL scheme. Implementations
// perform flash operations only through the Env they are handed, which
// charges latencies to the in-flight request and attributes them to the
// paper's counters.
type Translator interface {
	// Name returns the scheme name used in reports ("DFTL", "TPFTL", ...).
	Name() string

	// Translate returns the PPN mapped to lpn. On a cache miss the
	// implementation loads the entry from flash via env.ReadTP and must
	// call env.NoteLookup. It returns flash.InvalidPPN for an unmapped
	// page.
	Translate(env Env, lpn LPN) (flash.PPN, error)

	// Update records a new mapping lpn→ppn after a data-page write. The
	// resulting cache entry is dirty until written back. The device calls
	// Update immediately after Translate of the same lpn, so
	// implementations may rely on the entry being resident; a standalone
	// Update must still work but may not be GC-coherent if its own
	// evictions trigger garbage collection.
	Update(env Env, lpn LPN, ppn flash.PPN) error

	// BeginRequest announces the page span of the next user request
	// before its per-page operations. Schemes that exploit request-level
	// context (TPFTL's request-level prefetching) use it; others ignore it.
	BeginRequest(first, last LPN, write bool)

	// OnGCDataMoves updates the mappings of the valid pages migrated out
	// of one GC victim data block. Implementations batch updates that
	// share a translation page into one flash update and must call
	// env.NoteGCMapUpdate for each move.
	OnGCDataMoves(env Env, moves []GCMove) error

	// Discard drops any cached entry for lpn without writing it back: the
	// host has trimmed the page, so a dirty entry's pending mapping must
	// never reach flash. Pure RAM bookkeeping — no Env, no flash cost. The
	// device invalidates truth/persist and the flash pages itself.
	Discard(lpn LPN)

	// FlushDirty writes every dirty cached entry back to its translation
	// page (batched per page, deterministic page order) and marks the
	// cache clean. A host flush bounds dirty-entry loss to zero: after
	// FlushDirty returns, no acknowledged mapping lives only in RAM.
	FlushDirty(env Env) error
}

// CacheSnapshot describes the mapping-cache contents at one instant; the
// Fig. 1 / Fig. 2 instrumentation samples it periodically.
type CacheSnapshot struct {
	Entries      int // cached mapping entries
	DirtyEntries int
	TPNodes      int // distinct translation pages with ≥1 cached entry
	UsedBytes    int64
	// DirtyPerPage maps each cached translation page to its number of
	// dirty entries (includes pages with zero dirty entries).
	DirtyPerPage map[VTPN]int
}

// Inspector is implemented by schemes that expose cache introspection.
type Inspector interface {
	Snapshot() CacheSnapshot
}

// GeometryAware is implemented by schemes that size internal structures
// from the device geometry. NewDevice calls SetGeometry at construction, so
// a scheme never has to guess the entries-per-translation-page count before
// its first Translate (whose Env would otherwise be the only source).
type GeometryAware interface {
	SetGeometry(entriesPerTP int)
}

// Warmer is implemented by schemes that must learn the post-format mapping
// (the optimal FTL holds the whole table in RAM). The harness calls Warm
// right after Device.Format with the device's persisted-view accessor.
type Warmer interface {
	Warm(persisted func(LPN) flash.PPN)
}

// Env is the device interface handed to Translator implementations.
type Env interface {
	// EntriesPerTP returns the number of mapping entries per translation
	// page (1024 with 4 KB pages).
	EntriesPerTP() int
	// NumTPs returns the number of translation pages.
	NumTPs() int
	// NumLPNs returns the logical page count.
	NumLPNs() int64

	// ReadTP reads translation page v from flash (cost: one page read)
	// and returns its entries, indexed by offset. The returned slice is
	// the device's copy: callers must not modify or retain it across
	// other Env calls.
	ReadTP(v VTPN) ([]flash.PPN, error)

	// WriteTP updates translation page v in flash with the given slot
	// updates. Unless fullPage is set, the cost is a read-modify-write
	// (one page read + one page write, the Tfr+Tfw of Eq. 1); with
	// fullPage, the caller holds the entire page content in RAM (S-FTL)
	// and only the page write is charged.
	WriteTP(v VTPN, updates []EntryUpdate, fullPage bool) error

	// NoteLookup records one address-translation cache lookup.
	NoteLookup(hit bool)
	// NoteReplacement records one cache-entry replacement and whether the
	// victim was dirty (the paper's Prd numerator/denominator).
	NoteReplacement(dirty bool)
	// NoteGCMapUpdate records, for one migrated data page, whether its
	// mapping entry was cached (a GC hit, Hgcr) or required a flash
	// update (a GC miss).
	NoteGCMapUpdate(hit bool)
	// NoteBatchWriteback records how many dirty entries one translation
	// page update cleaned (batch-update efficiency instrumentation).
	NoteBatchWriteback(cleaned int)
}

// VTPNOf returns the translation page holding lpn.
func VTPNOf(lpn LPN, entriesPerTP int) VTPN { return VTPN(lpn / LPN(entriesPerTP)) }

// OffOf returns lpn's slot within its translation page.
func OffOf(lpn LPN, entriesPerTP int) int { return int(lpn % LPN(entriesPerTP)) }

// LPNAt returns the LPN of slot off in translation page v.
func LPNAt(v VTPN, off, entriesPerTP int) LPN { return LPN(v)*LPN(entriesPerTP) + LPN(off) }

// Error strings share this prefix for easy attribution in mixed logs.
func errf(format string, args ...any) error {
	return fmt.Errorf("ftl: "+format, args...)
}
