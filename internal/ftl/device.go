package ftl

import (
	"errors"
	"io"
	"math/rand"
	"time"

	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// phase labels which activity flash operations are attributed to.
type phase uint8

const (
	phaseAT phase = iota // address translation / user access
	phaseGC
)

// Device is a simulated SSD: flash chip + block management + GC + the
// on-flash mapping table, driven by a pluggable Translator (the
// mapping-cache policy under study).
type Device struct {
	cfg  Config
	chip *flash.Chip
	bm   *blockMgr
	tr   Translator

	entriesPerTP int
	numTPs       int
	logicalPages int64

	gtd     []flash.PPN // VTPN → physical translation page
	persist []flash.PPN // LPN → PPN as stored in flash translation pages
	truth   []flash.PPN // LPN → PPN ground truth (updated at write time)

	tpBuf []flash.PPN // scratch returned by ReadTP

	// sched is the event-driven clock of the parallel backend: flash
	// operations are issued onto the die of their block and overlap when
	// independent (see internal/ssd). At 1 channel × 1 die it reproduces
	// the scalar-clock timing of the original device bit-for-bit.
	sched   *ssd.Scheduler
	serving bool          // inside a request; timing charged only then
	resetAt time.Duration // simulated time of the last metrics reset
	// busyAtReset snapshots per-channel busy time at the last metrics
	// reset, so Metrics reports busy deltas of the measured phase only.
	busyAtReset [MaxChannels]time.Duration

	seq  int64 // program sequence counter (crash-recovery ordering)
	ph   phase
	inGC bool

	// rng is the device's private random source. Nothing in the device
	// touches the global math/rand state, so a run is bit-for-bit
	// reproducible from Config.Seed (and a PreconditionRange seed).
	rng *rand.Rand

	m Metrics

	// Observability (all nil/zero when disabled; the disabled path does no
	// work — see internal/obs). tracer mirrors the scheduler's tracer so the
	// device can emit request spans; metricsW streams a JSONL snapshot every
	// metricsEvery served requests. The per-request phase accumulators
	// (reqXlate/reqData/reqWB and the hit/miss/prefetch classification) are
	// reset at admission and folded into m.Phases at completion.
	tracer       *obs.Tracer
	metricsW     *obs.MetricsWriter
	metricsEvery int64
	// live is the shard's telemetry cell (nil when the live plane is off —
	// the disabled path pays one nil check and allocates nothing). Epochs
	// and recorder appends happen only on the serving goroutine.
	live        *live.Cell
	snapSeq     int64
	lastExport  obs.Counters
	reqXlate    time.Duration
	reqData     time.Duration
	reqWB       time.Duration
	reqMiss     bool
	reqPrefetch bool

	// OnSample, if set, is invoked every SampleEvery user page accesses
	// with the current page-access count; the Fig. 1/2 instrumentation
	// hooks in here.
	OnSample    func(pageAccesses int64)
	SampleEvery int64

	formatted bool
}

// NewDevice builds a device with the given configuration and policy.
func NewDevice(cfg Config, tr Translator) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	chip, err := flash.New(cfg.flashConfig())
	if err != nil {
		return nil, err
	}
	entriesPerTP := cfg.PageSize / EntryBytesInFlash
	logicalPages := cfg.LogicalPages()
	numTPs := int((logicalPages + int64(entriesPerTP) - 1) / int64(entriesPerTP))
	bm := newBlockMgr(chip, cfg.TransPlacement)
	bm.policy = cfg.GCPolicy
	d := &Device{
		cfg:          cfg,
		chip:         chip,
		bm:           bm,
		tr:           tr,
		entriesPerTP: entriesPerTP,
		numTPs:       numTPs,
		logicalPages: logicalPages,
		gtd:          make([]flash.PPN, numTPs),
		persist:      make([]flash.PPN, logicalPages),
		truth:        make([]flash.PPN, logicalPages),
		tpBuf:        make([]flash.PPN, entriesPerTP),
		sched:        ssd.NewScheduler(cfg.Channels, cfg.Dies),
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	d.rng = rand.New(rand.NewSource(seed))
	if ga, ok := tr.(GeometryAware); ok {
		ga.SetGeometry(entriesPerTP)
	}
	for i := range d.gtd {
		d.gtd[i] = flash.InvalidPPN
	}
	for i := range d.persist {
		d.persist[i] = flash.InvalidPPN
		d.truth[i] = flash.InvalidPPN
	}
	return d, nil
}

// Config returns the device configuration (normalized).
func (d *Device) Config() Config { return d.cfg }

// Chip exposes the underlying flash chip (read-only use in tests/benches).
func (d *Device) Chip() *flash.Chip { return d.chip }

// Translator returns the device's mapping policy.
func (d *Device) Translator() Translator { return d.tr }

// Metrics returns a snapshot of the accumulated counters, including the
// parallel backend's per-channel busy time and elapsed simulated time since
// the last reset.
func (d *Device) Metrics() Metrics {
	m := d.m
	fc := d.chip.Config()
	m.Channels = fc.NumChannels()
	m.DiesPerChannel = fc.NumDies() / m.Channels
	for c := 0; c < m.Channels && c < MaxChannels; c++ {
		m.ChanBusy[c] = d.sched.ChannelBusy(c) - d.busyAtReset[c]
	}
	if now := d.sched.Now(); now > d.resetAt {
		m.Elapsed = now - d.resetAt
	}
	return m
}

// ResetMetrics zeroes the counters (e.g. after a warm-up phase) and re-bases
// the busy-time and elapsed-time accounting at the current simulated time.
// With a live cell attached, the pre-reset totals are first published and
// folded into the cell's monotonic base, so counters scraped off the live
// plane keep growing across the reset (the Prometheus counter contract).
func (d *Device) ResetMetrics() {
	if c := d.live; c != nil {
		d.publishLive()
		c.FoldBase(d.m.Counters(), d.m.GCDataCollections, d.m.GCTransCollections)
	}
	d.m = Metrics{}
	for c := 0; c < d.chip.Config().NumChannels() && c < MaxChannels; c++ {
		d.busyAtReset[c] = d.sched.ChannelBusy(c)
	}
	d.resetAt = d.sched.Now()
	d.lastExport = obs.Counters{}
}

// SetTracer attaches (or with nil, detaches) a span tracer: every flash
// operation the scheduler places becomes a Chrome trace_event span on its
// die's track, and every served request an async span on the request lane.
// Tracing reads the simulated clock and never advances it.
func (d *Device) SetTracer(t *obs.Tracer) {
	d.tracer = t
	d.sched.SetTracer(t)
	if t == nil {
		return
	}
	t.ProcessName(0, "flash dies")
	t.ProcessName(1, "requests")
	fc := d.chip.Config()
	for die := 0; die < fc.NumDies(); die++ {
		t.ThreadName(die, fc.ChannelOfDie(die))
	}
}

// SetLive attaches (or with nil, detaches) the shard's live-telemetry cell.
// Attach before serving; the device publishes immutable epochs into the cell
// at the cell's request-count cadence and appends every request to its
// flight recorder — all from the serving goroutine, the cell's single
// writer. Telemetry reads the simulated clock and never advances it.
func (d *Device) SetLive(c *live.Cell) { d.live = c }

// PublishLive immediately publishes a telemetry epoch from the current
// metrics (end of run or phase boundary). No-op without a cell.
func (d *Device) PublishLive() { d.publishLive() }

// publishLive builds one epoch from the cumulative metrics and swaps it
// into the cell. Cold path: only reached with the live plane enabled.
func (d *Device) publishLive() {
	if c := d.live; c != nil {
		c.Publish(int64(d.sched.Now()), d.m.Counters(),
			d.m.GCDataCollections, d.m.GCTransCollections, int64(d.m.MaxResponse))
	}
}

// recordLive appends one served (or failed — complete stays zero) request
// to the flight recorder and publishes an epoch when one is due. The
// recorder ring is pre-allocated and Record is pointer-free, so this
// allocates nothing per request.
//
//ftl:hotpath
func (d *Device) recordLive(c *live.Cell, req *trace.Request, arrival, admit, complete time.Duration) {
	if c == nil {
		return
	}
	c.Recorder().Append(live.Record{
		SimNS:      int64(d.sched.Now()),
		Kind:       liveKind(req.Op),
		Off:        req.Offset,
		N:          req.Length,
		ArrivalNS:  int64(arrival),
		AdmitNS:    int64(admit),
		CompleteNS: int64(complete),
	})
	if c.Due(d.m.Requests) {
		d.publishLive()
	}
}

// liveKind maps a host op onto its flight-recorder record kind.
func liveKind(op trace.Op) live.Kind {
	switch op {
	case trace.OpWrite:
		return live.KindWrite
	case trace.OpWriteFUA:
		return live.KindWriteFUA
	case trace.OpTrim:
		return live.KindTrim
	case trace.OpFlush:
		return live.KindFlush
	default:
		return live.KindRead
	}
}

// SetMetricsExport streams a metrics snapshot (cumulative counters, deltas,
// per-phase quantiles) to w as one JSON line every `every` served requests.
// Arm it after the warm-up ResetMetrics so deltas cover the measured phase.
func (d *Device) SetMetricsExport(w io.Writer, every int64) {
	if w == nil || every <= 0 {
		d.metricsW, d.metricsEvery = nil, 0
		return
	}
	d.metricsW = obs.NewMetricsWriter(w)
	d.metricsEvery = every
	d.snapSeq = 0
	m := d.Metrics()
	d.lastExport = m.Counters()
}

// FinishObservability flushes the observability sinks at end of run: a
// final metrics snapshot when requests were served past the last interval
// boundary, then the JSONL flush and the trace-file footer. A device with
// no sinks armed is untouched.
func (d *Device) FinishObservability() error {
	var firstErr error
	if d.metricsW != nil {
		if d.m.Requests > d.lastExport.Requests || d.snapSeq == 0 {
			d.exportSnapshot()
		}
		firstErr = d.metricsW.Flush()
	}
	if d.tracer != nil {
		if err := d.tracer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// exportSnapshot writes one JSONL metrics record stamped with the current
// simulated clock.
func (d *Device) exportSnapshot() {
	m := d.Metrics()
	cur := m.Counters()
	d.snapSeq++
	rec := obs.SnapshotRecord{
		Seq:       d.snapSeq,
		SimTimeNS: int64(d.sched.Now()),
		Requests:  cur.Requests,
		Delta:     cur.Sub(d.lastExport),
		Total:     cur,
		Phases:    m.PhaseSnapshots(),
	}
	d.metricsW.Write(&rec)
	d.lastExport = cur
}

// Now returns the simulated device clock: the completion time of the latest
// retired request.
func (d *Device) Now() time.Duration { return d.sched.Now() }

// Scheduler exposes the event-driven backend clock (tests and the
// simulation harness read utilization and the event hash from it).
func (d *Device) Scheduler() *ssd.Scheduler { return d.sched }

// Format pre-fills the device: every logical page is written once in LPN
// order and the full mapping table is laid out in translation pages, putting
// the SSD "in full use" as the paper's experiments assume. Formatting
// bypasses the mapping cache and is excluded from all metrics.
func (d *Device) Format() error {
	if d.formatted {
		return errf("device already formatted")
	}
	for lpn := int64(0); lpn < d.logicalPages; lpn++ {
		ppn, err := d.bm.alloc(blockData)
		if err != nil {
			return err
		}
		if _, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindData, Tag: lpn, Seq: d.nextSeq()}); err != nil {
			return err
		}
		d.truth[lpn] = ppn
		d.persist[lpn] = ppn
	}
	for v := 0; v < d.numTPs; v++ {
		ppn, err := d.bm.alloc(blockTrans)
		if err != nil {
			return err
		}
		if _, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindTranslation, Tag: int64(v), Seq: d.nextSeq()}); err != nil {
			return err
		}
		d.gtd[v] = ppn
	}
	d.formatted = true
	return nil
}

// Formatted reports whether Format has run.
func (d *Device) Formatted() bool { return d.formatted }

// Precondition ages the device into a GC steady state: it rewrites `writes`
// uniformly random logical pages through the normal allocation and GC paths,
// so block occupancy reaches the organic fragmentation a long-running device
// shows, instead of the all-valid state Format leaves behind. The mapping
// cache is bypassed (truth and persist are updated directly, as the
// preconditioning agent knows the mapping), so measurements start with a
// cold cache; GC triggered during preconditioning still exercises the real
// Translator paths. Call ResetMetrics afterwards.
func (d *Device) Precondition(writes int, seed int64) error {
	return d.PreconditionRange(writes, d.logicalPages, seed)
}

// PreconditionRange is Precondition restricted to LPNs in [0, pages): aging
// only a workload's footprint leaves the cold remainder consolidated in
// fully-valid blocks, as on a long-running device.
func (d *Device) PreconditionRange(writes int, pages int64, seed int64) error {
	if !d.formatted {
		return errf("Precondition requires a formatted device")
	}
	if pages <= 0 || pages > d.logicalPages {
		pages = d.logicalPages
	}
	d.rng = rand.New(rand.NewSource(seed))
	d.ph = phaseAT
	for i := 0; i < writes; i++ {
		lpn := LPN(d.rng.Int63n(pages))
		if err := d.maybeGC(); err != nil {
			return err
		}
		old := d.truth[lpn]
		ppn, err := d.bm.alloc(blockData)
		if err != nil {
			return err
		}
		if _, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindData, Tag: int64(lpn), Seq: d.nextSeq()}); err != nil {
			return err
		}
		if old.Valid() {
			if err := d.bm.invalidate(old); err != nil {
				return err
			}
		}
		d.truth[lpn] = ppn
		d.persist[lpn] = ppn
	}
	return nil
}

// Serve executes one request admitted as soon as the device is idle — the
// closed-loop queue-depth-1 admission of the original scalar-clock device —
// and returns its response time (queueing included). Requests must be
// submitted in non-decreasing arrival order. Deeper queues and open-loop
// arrival admission go through ServeAt, driven by ssd.Frontend.
func (d *Device) Serve(req trace.Request) (time.Duration, error) {
	arrival := time.Duration(req.Arrival)
	admit := d.sched.Now()
	if arrival > admit {
		admit = arrival
	}
	_, resp, err := d.serveAdmitted(req, admit)
	return resp, err
}

// ServeAt executes one request admitted at the given simulated time (never
// before its arrival) and returns its completion time. It implements
// ssd.Server: the frontend picks admission times, the device schedules the
// request's flash operations onto its dies from there. Logical effects
// apply in call order; only timing overlaps between requests.
func (d *Device) ServeAt(req trace.Request, admit time.Duration) (time.Duration, error) {
	complete, _, err := d.serveAdmitted(req, admit)
	return complete, err
}

func (d *Device) serveAdmitted(req trace.Request, admit time.Duration) (complete, resp time.Duration, err error) {
	if err := req.Validate(); err != nil {
		return 0, 0, err
	}
	if req.End() > d.cfg.LogicalBytes {
		return 0, 0, errf("request [%d,%d) beyond capacity %d", req.Offset, req.End(), d.cfg.LogicalBytes)
	}
	arrival := time.Duration(req.Arrival)
	if admit < arrival {
		admit = arrival
	}
	d.ph = phaseAT
	d.serving = true
	defer func() { d.serving = false }()
	d.sched.BeginRequest(admit)
	d.reqXlate, d.reqData, d.reqWB = 0, 0, 0
	d.reqMiss, d.reqPrefetch = false, false
	gcBase := d.m.GCTime
	if c := d.live; c != nil {
		// Deferred so a failing request — the one a post-mortem cares
		// about — still lands in the flight recorder (complete stays 0).
		defer func() { d.recordLive(c, &req, arrival, admit, complete) }()
	}

	switch req.Op {
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA:
		first, last := req.Pages(d.cfg.PageSize)
		d.tr.BeginRequest(LPN(first), LPN(last), req.IsWrite())
		for lpn := LPN(first); lpn <= LPN(last); lpn++ {
			// Page sub-operations of one request carry no dependency on
			// each other: each opens a fresh chain from the admission time,
			// so sub-ops striped onto different dies overlap.
			d.sched.BreakChain()
			var err error
			if req.IsWrite() {
				err = d.writePage(lpn)
			} else {
				err = d.readPage(lpn)
			}
			if err != nil {
				return 0, 0, err
			}
			if d.SampleEvery > 0 && d.m.PageAccesses()%d.SampleEvery == 0 && d.OnSample != nil {
				d.OnSample(d.m.PageAccesses())
			}
		}
		if req.Op == trace.OpWriteFUA {
			// Every acknowledged program is durable in this device (no
			// volatile data buffer inside), so FUA costs nothing extra
			// here; the counter feeds the host-interface accounting and
			// any buffer wrapped around the device honors write-through.
			d.m.FUAWrites++
		}
	case trace.OpTrim:
		d.m.TrimRequests++
		if err := d.trimRequest(req); err != nil {
			return 0, 0, err
		}
	case trace.OpFlush:
		d.m.FlushRequests++
		if err := d.flushMapping(); err != nil {
			return 0, 0, err
		}
	default:
		return 0, 0, errf("unhandled request op %v", req.Op)
	}

	complete = d.sched.EndRequest()
	resp = complete - arrival
	d.m.Requests++
	d.m.ServiceTime += complete - admit
	d.m.ResponseTime += resp
	d.m.QueueTime += admit - arrival
	d.m.ObserveResponse(resp)
	d.observeRequest(arrival, admit, complete, d.m.GCTime-gcBase, req.Op)
	if SanitizerEnabled {
		if err := d.sanitize(); err != nil {
			return 0, 0, err
		}
	}
	return complete, resp, nil
}

// observeRequest attributes one completed request's latency across the
// phase histograms and feeds the tracer/export sinks. For reads and writes,
// translation time goes to exactly one of the hit/miss/prefetch phases —
// classified by whether any cache lookup missed and whether a miss load
// prefetched extra entries — so those three counts sum to the read/write
// request count. Trims and flushes record their flash time into their own
// phases instead.
//
//ftl:hotpath
func (d *Device) observeRequest(arrival, admit, complete, gcStall time.Duration, op trace.Op) {
	d.m.Phases[obs.PhaseQueue].Record(admit - arrival)
	switch op {
	case trace.OpTrim:
		d.m.Phases[obs.PhaseTrim].Record(d.reqWB)
	case trace.OpFlush:
		d.m.Phases[obs.PhaseFlush].Record(d.reqWB)
	default:
		xp := obs.PhaseXlateHit
		if d.reqMiss {
			xp = obs.PhaseXlateMiss
			if d.reqPrefetch {
				xp = obs.PhaseXlatePrefetch
			}
		}
		d.m.Phases[xp].Record(d.reqXlate)
		d.m.Phases[obs.PhaseData].Record(d.reqData)
		d.m.Phases[obs.PhaseWriteback].Record(d.reqWB)
	}
	d.m.Phases[obs.PhaseGCStall].Record(gcStall)
	if t := d.tracer; t != nil {
		t.RequestSpan(op.String(), d.m.Requests, arrival, complete)
	}
	if d.metricsW != nil && d.m.Requests%d.metricsEvery == 0 {
		d.exportSnapshot()
	}
}

// sanitize runs the per-operation invariant suite when the binary is built
// with -tags ftlsan: full device consistency (chip bookkeeping, GTD,
// truth/persist against the translator's dirty set) plus the translator's
// own structural checks, when it exposes them.
func (d *Device) sanitize() error {
	var dirty map[LPN]flash.PPN
	if t, ok := d.tr.(interface{ DirtyCached() map[LPN]flash.PPN }); ok {
		dirty = t.DirtyCached()
	}
	checks := []func() error{func() error { return d.CheckConsistency(dirty) }}
	if t, ok := d.tr.(interface{ CheckInvariants() error }); ok {
		checks = append(checks, t.CheckInvariants)
	}
	return SanitizeCheck(d.tr.Name(), checks...)
}

// Run serves every request and returns the accumulated metrics.
func (d *Device) Run(reqs []trace.Request) (Metrics, error) {
	for i := range reqs {
		if _, err := d.Serve(reqs[i]); err != nil {
			return d.m, errf("request %d: %w", i, err)
		}
	}
	return d.m, nil
}

func (d *Device) readPage(lpn LPN) error {
	d.m.PageReads++
	ppn, err := d.tr.Translate(d, lpn)
	if err != nil {
		return err
	}
	if ppn != d.truth[lpn] {
		return errf("%s mistranslated read of lpn %d: got ppn %d, truth %d",
			d.tr.Name(), lpn, ppn, d.truth[lpn])
	}
	if !ppn.Valid() {
		d.m.UnmappedReads++
		return nil
	}
	lat, err := d.chipRead(ppn)
	if err != nil {
		return err
	}
	d.issuePage(ppn, lat, obs.OpDataRead)
	d.reqData += lat
	d.m.FlashReads++
	return nil
}

func (d *Device) writePage(lpn LPN) error {
	d.m.PageWrites++
	old, err := d.tr.Translate(d, lpn)
	if err != nil {
		return err
	}
	if old != d.truth[lpn] {
		return errf("%s mistranslated write of lpn %d: got ppn %d, truth %d",
			d.tr.Name(), lpn, old, d.truth[lpn])
	}
	if err := d.maybeGC(); err != nil {
		return err
	}
	// GC may just have migrated this page; invalidate its current
	// location, not the pre-GC one returned by the translator.
	old = d.truth[lpn]
	ppn, err := d.bm.alloc(blockData)
	if err != nil {
		return err
	}
	lat, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindData, Tag: int64(lpn), Seq: d.nextSeq()})
	if err != nil {
		return err
	}
	d.issuePage(ppn, lat, obs.OpDataProgram)
	d.reqData += lat
	d.m.FlashPrograms++
	if old.Valid() {
		if err := d.bm.invalidate(old); err != nil {
			return err
		}
	}
	d.truth[lpn] = ppn
	return d.tr.Update(d, lpn, ppn)
}

// trimRequest discards the logical pages wholly covered by a TRIM request.
// Trims round inward: a partially-covered page keeps its data (discarding
// it would destroy bytes outside the trimmed range), so a sub-page trim is
// a no-op.
func (d *Device) trimRequest(req trace.Request) error {
	pageSize := int64(d.cfg.PageSize)
	first := (req.Offset + pageSize - 1) / pageSize
	last := req.End()/pageSize - 1
	lpn := LPN(first)
	for lpn <= LPN(last) {
		v := VTPNOf(lpn, d.entriesPerTP)
		end := LPNAt(v+1, 0, d.entriesPerTP) - 1
		if end > LPN(last) {
			end = LPN(last)
		}
		d.sched.BreakChain()
		if err := d.trimTP(v, lpn, end); err != nil {
			return err
		}
		lpn = end + 1
	}
	return nil
}

// trimTP makes the discard of [lo, hi] — all inside translation page v —
// durable, then applies it to the live state. The discard durability
// contract (a trimmed LPN must never resurrect its old data after a crash)
// forces a strict order: first rewrite the translation page with the
// trimmed slots cleared (read-modify-write + program, all fault-retried),
// and only once the program has succeeded invalidate the old translation
// page, the trimmed data pages and the live mapping. A power cut anywhere
// before that commit point aborts with no live state touched, so the device
// never exposes a discard that would not survive the crash — the exact dual
// of writePage, which updates truth only after its data program succeeded.
//
// Trims deliberately bypass WriteTP: WriteTP applies content updates to the
// persisted view before its program (safe for the valid mappings
// translators write back, where a premature entry only goes stale), but a
// premature Invalid would claim a discard is durable when the cut may have
// prevented exactly that.
func (d *Device) trimTP(v VTPN, lo, hi LPN) error {
	// Drop cached entries first: RAM-only state, lost in a crash anyway,
	// and a dirty entry for a trimmed page must never be written back.
	for lpn := lo; lpn <= hi; lpn++ {
		d.tr.Discard(lpn)
	}
	if err := d.maybeGC(); err != nil {
		return err
	}
	old := d.gtd[v]
	if old.Valid() {
		lat, err := d.chipRead(old)
		if err != nil {
			return err
		}
		d.issuePage(old, lat, obs.OpTransRead)
		d.m.FlashReads++
		d.m.TransReadsAT++
		if d.serving {
			d.reqWB += lat
		}
	}
	ppn, err := d.bm.alloc(blockTrans)
	if err != nil {
		return err
	}
	lat, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindTranslation, Tag: int64(v), Seq: d.nextSeq()})
	if err != nil {
		return err
	}
	d.issuePage(ppn, lat, obs.OpTransProgram)
	d.m.FlashPrograms++
	d.m.TransWritesAT++
	if d.serving {
		d.reqWB += lat
	}
	// Commit point: the cleared translation page is on flash.
	if old.Valid() {
		if err := d.bm.invalidate(old); err != nil {
			return err
		}
	}
	d.gtd[v] = ppn
	d.foldTPPersist(v)
	for lpn := lo; lpn <= hi; lpn++ {
		d.persist[lpn] = flash.InvalidPPN
		if t := d.truth[lpn]; t.Valid() {
			if err := d.bm.invalidate(t); err != nil {
				return err
			}
			d.truth[lpn] = flash.InvalidPPN
			d.m.TrimmedPages++
		}
	}
	return nil
}

// flushMapping serves a host flush barrier: every dirty cached mapping
// entry is written back, so no acknowledged write's mapping lives only in
// RAM once the flush is acknowledged. (Data pages are always durable at
// acknowledgement in this device; recovery rebuilds their mapping from OOB
// metadata even without the writeback, but the flush bounds the recovery
// scan's exposure and is the contract sim.RunCrash verifies.) A flush that
// found nothing dirty is free; one that had to touch flash counts as a
// stall.
func (d *Device) flushMapping() error {
	base := d.m.FlashPrograms
	if err := d.tr.FlushDirty(d); err != nil {
		return err
	}
	if d.m.FlashPrograms > base {
		d.m.FlushStalls++
	}
	return nil
}

// foldTPPersist folds ground truth into the persisted view of translation
// page v: every slot whose persisted entry is unmapped while the live
// mapping is valid takes the live value. Called whenever a new physical
// copy of v is programmed (WriteTP, trim rewrite, GC migration) — the
// rewrite opportunistically persists mappings whose writeback was still
// pending. This keeps recovery's trim rule sound: after any translation
// page program, a persisted-unmapped slot implies the page really is
// unmapped, so "translation page newer than data page + slot unmapped"
// can only mean a durable discard. On a device that never trims, persisted
// entries are never unmapped after Format and this is a no-op.
func (d *Device) foldTPPersist(v VTPN) {
	lo := int64(v) * int64(d.entriesPerTP)
	hi := min64(lo+int64(d.entriesPerTP), d.logicalPages)
	for lpn := lo; lpn < hi; lpn++ {
		if d.persist[lpn] == flash.InvalidPPN && d.truth[lpn].Valid() {
			d.persist[lpn] = d.truth[lpn]
		}
	}
}

// issuePage charges one completed flash operation on p's die to the
// event-driven clock; issueBlock does the same for a block-level operation
// (erase). Operations run outside a request — Format, Precondition, and the
// GC they trigger — keep their metric attribution but are not scheduled:
// the measured timeline starts pristine, exactly as the scalar-clock device
// discarded pre-measurement latency.
func (d *Device) issuePage(p flash.PPN, lat time.Duration, op obs.Op) {
	d.issueDie(d.chip.DieOf(p), lat, op)
}

func (d *Device) issueBlock(b flash.BlockID, lat time.Duration, op obs.Op) {
	d.issueDie(d.chip.DieOfBlock(b), lat, op)
}

func (d *Device) issueDie(die int, lat time.Duration, op obs.Op) {
	if d.ph == phaseGC {
		d.m.GCTime += lat
		op = op.GC()
	}
	if d.serving {
		d.sched.IssueOp(die, lat, op)
	}
}

// --- Fault-tolerant chip access ------------------------------------------

// maxFaultRetries returns the per-operation retry budget for transient
// injected faults.
func (d *Device) maxFaultRetries() int {
	if d.cfg.FaultRetries > 0 {
		return d.cfg.FaultRetries
	}
	return 3
}

// retryOp runs one chip operation, retrying transient injected faults up to
// the configured budget. Every failed attempt still costs the operation's
// nominal latency (the die spent the time before reporting the failure),
// returned on top of the successful attempt's latency so the clock never
// under-counts. Non-transient errors — power cuts, NAND rule violations,
// worn-out blocks, exhausted retries — surface unchanged; the caller must
// abort its update without touching any mapping state it has not yet
// committed.
func (d *Device) retryOp(op func() (time.Duration, error), nominal time.Duration) (time.Duration, error) {
	var penalty time.Duration
	for attempt := 0; ; attempt++ {
		lat, err := op()
		if err == nil {
			return penalty + lat, nil
		}
		var fe *flash.FaultError
		if !errors.As(err, &fe) {
			return 0, err
		}
		d.m.InjectedFaults++
		if !fe.Transient || attempt >= d.maxFaultRetries() {
			return 0, err
		}
		d.m.FaultRetries++
		penalty += nominal
	}
}

func (d *Device) chipRead(p flash.PPN) (time.Duration, error) {
	return d.retryOp(func() (time.Duration, error) { return d.chip.Read(p) }, d.cfg.ReadLatency)
}

func (d *Device) chipProgram(p flash.PPN, m flash.Meta) (time.Duration, error) {
	return d.retryOp(func() (time.Duration, error) { return d.chip.Program(p, m) }, d.cfg.WriteLatency)
}

func (d *Device) chipErase(blk flash.BlockID) (time.Duration, error) {
	return d.retryOp(func() (time.Duration, error) { return d.chip.Erase(blk) }, d.cfg.EraseLatency)
}

// --- Env implementation -------------------------------------------------

// EntriesPerTP implements Env.
func (d *Device) EntriesPerTP() int { return d.entriesPerTP }

// NumTPs implements Env.
func (d *Device) NumTPs() int { return d.numTPs }

// NumLPNs implements Env.
func (d *Device) NumLPNs() int64 { return d.logicalPages }

// ReadTP implements Env: it reads translation page v from flash and returns
// its entries. If the page has never been written (unformatted device), no
// flash operation is charged.
func (d *Device) ReadTP(v VTPN) ([]flash.PPN, error) {
	if v < 0 || int(v) >= d.numTPs {
		return nil, errf("ReadTP: vtpn %d out of range [0,%d)", v, d.numTPs)
	}
	if phys := d.gtd[v]; phys.Valid() {
		lat, err := d.chipRead(phys)
		if err != nil {
			return nil, err
		}
		d.issuePage(phys, lat, obs.OpTransRead)
		d.m.FlashReads++
		if d.ph == phaseGC {
			d.m.TransReadsGC++
		} else {
			d.m.TransReadsAT++
			if d.serving {
				d.reqXlate += lat
			}
		}
	}
	lo := int64(v) * int64(d.entriesPerTP)
	n := copy(d.tpBuf, d.persist[lo:min64(lo+int64(d.entriesPerTP), d.logicalPages)])
	for i := n; i < d.entriesPerTP; i++ {
		d.tpBuf[i] = flash.InvalidPPN
	}
	return d.tpBuf, nil
}

// WriteTP implements Env: a translation-page update. Without fullPage it is
// a read-modify-write (Tfr+Tfw, Eq. 1); with fullPage only the program is
// charged (S-FTL's whole-page writeback).
func (d *Device) WriteTP(v VTPN, updates []EntryUpdate, fullPage bool) error {
	if v < 0 || int(v) >= d.numTPs {
		return errf("WriteTP: vtpn %d out of range [0,%d)", v, d.numTPs)
	}
	// Apply the content updates before anything that can trigger GC: a GC
	// run below may itself update this page's persisted entries with
	// fresher values (migrated data pages), which must not be overwritten
	// by the caller's older snapshot afterwards.
	base := int64(v) * int64(d.entriesPerTP)
	for _, u := range updates {
		if u.Off < 0 || u.Off >= d.entriesPerTP {
			return errf("WriteTP: offset %d out of range", u.Off)
		}
		lpn := base + int64(u.Off)
		if lpn >= d.logicalPages {
			return errf("WriteTP: update beyond logical space (vtpn %d off %d)", v, u.Off)
		}
		d.persist[lpn] = u.PPN
	}
	// The fresh physical copy opportunistically persists any mapping whose
	// writeback was still pending (see foldTPPersist); unmapped slots after
	// this point are durable discards.
	d.foldTPPersist(v)
	if err := d.maybeGC(); err != nil {
		return err
	}
	old := d.gtd[v]
	if old.Valid() && !fullPage {
		lat, err := d.chipRead(old)
		if err != nil {
			return err
		}
		d.issuePage(old, lat, obs.OpTransRead)
		d.m.FlashReads++
		if d.ph == phaseGC {
			d.m.TransReadsGC++
		} else {
			d.m.TransReadsAT++
			if d.serving {
				d.reqWB += lat
			}
		}
	}
	ppn, err := d.bm.alloc(blockTrans)
	if err != nil {
		return err
	}
	lat, err := d.chipProgram(ppn, flash.Meta{Kind: flash.KindTranslation, Tag: int64(v), Seq: d.nextSeq()})
	if err != nil {
		return err
	}
	d.issuePage(ppn, lat, obs.OpTransProgram)
	d.m.FlashPrograms++
	if d.ph == phaseGC {
		d.m.TransWritesGC++
	} else {
		d.m.TransWritesAT++
		if d.serving {
			d.reqWB += lat
		}
	}
	if old.Valid() {
		if err := d.bm.invalidate(old); err != nil {
			return err
		}
	}
	d.gtd[v] = ppn
	return nil
}

// NoteLookup implements Env.
func (d *Device) NoteLookup(hit bool) {
	d.m.Lookups++
	if hit {
		d.m.Hits++
	} else if d.serving && d.ph != phaseGC {
		d.reqMiss = true
	}
}

// NoteReplacement implements Env.
func (d *Device) NoteReplacement(dirty bool) {
	d.m.Replacements++
	if dirty {
		d.m.DirtyReplaced++
	}
}

// NoteGCMapUpdate implements Env.
func (d *Device) NoteGCMapUpdate(hit bool) {
	d.m.GCMapUpdates++
	if hit {
		d.m.GCMapHits++
	}
}

// NoteBatchWriteback implements Env.
func (d *Device) NoteBatchWriteback(cleaned int) {
	if cleaned > 0 {
		d.m.BatchWritebacks++
		d.m.BatchCleaned += int64(cleaned)
	}
}

// NotePrefetch records entries loaded beyond the demanded one; used by
// prefetching translators.
func (d *Device) NotePrefetch(n int) {
	d.m.PrefetchedLoaded += int64(n)
	if n > 0 && d.serving && d.ph != phaseGC {
		d.reqPrefetch = true
	}
}

// nextSeq returns the next program sequence number; every programmed page
// carries one in its OOB metadata so crash recovery can order versions.
func (d *Device) nextSeq() int64 {
	d.seq++
	return d.seq
}

// --- Verification helpers (tests) ----------------------------------------

// Truth returns the ground-truth PPN for lpn.
func (d *Device) Truth(lpn LPN) flash.PPN { return d.truth[lpn] }

// Persisted returns the PPN recorded in flash translation pages for lpn.
func (d *Device) Persisted(lpn LPN) flash.PPN { return d.persist[lpn] }

// GTDEntry returns the physical page of translation page v.
func (d *Device) GTDEntry(v VTPN) flash.PPN { return d.gtd[v] }

// EraseSpread returns the minimum and maximum per-block erase counts — the
// wear imbalance that wear leveling bounds.
func (d *Device) EraseSpread() (min, max int) {
	n := d.chip.Config().NumBlocks
	if n == 0 {
		return 0, 0
	}
	min = d.chip.EraseCount(0)
	for b := 1; b < n; b++ {
		ec := d.chip.EraseCount(flash.BlockID(b))
		if ec < min {
			min = ec
		}
		if ec > max {
			max = ec
		}
	}
	return min, max
}

// CheckConsistency validates the device-wide invariants: chip bookkeeping,
// GTD pointing at valid translation pages, and — given the set of
// dirty-cached LPNs from the translator — the truth/persist relationship:
// truth differs from persist exactly for LPNs with a dirty cached entry.
func (d *Device) CheckConsistency(dirtyCached map[LPN]flash.PPN) error {
	if err := d.chip.CheckInvariants(); err != nil {
		return err
	}
	for v, ppn := range d.gtd {
		if !ppn.Valid() {
			continue
		}
		if st := d.chip.State(ppn); st != flash.PageValid {
			return errf("gtd[%d] = %d in state %v", v, ppn, st)
		}
		if m := d.chip.MetaOf(ppn); m.Kind != flash.KindTranslation || m.Tag != int64(v) {
			return errf("gtd[%d] = %d has meta %+v", v, ppn, m)
		}
	}
	for lpn := int64(0); lpn < d.logicalPages; lpn++ {
		t, p := d.truth[lpn], d.persist[lpn]
		if t.Valid() {
			if st := d.chip.State(t); st != flash.PageValid {
				return errf("truth[%d] = %d in state %v", lpn, t, st)
			}
			if m := d.chip.MetaOf(t); m.Kind != flash.KindData || m.Tag != lpn {
				return errf("truth[%d] = %d has meta %+v", lpn, t, m)
			}
		}
		if dirtyCached == nil {
			continue
		}
		dirtyPPN, dirty := dirtyCached[LPN(lpn)]
		if dirty && dirtyPPN != t {
			return errf("dirty cache entry for lpn %d holds %d, truth %d", lpn, dirtyPPN, t)
		}
		if t != p && !dirty {
			return errf("lpn %d: truth %d != persist %d with no dirty cache entry", lpn, t, p)
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
