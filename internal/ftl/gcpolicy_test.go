package ftl_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/trace"
)

// hotColdWrites drives a device with a skewed update pattern: 90 % of
// writes hit the first eighth of the space, the rest trickle everywhere.
func hotColdWrites(t *testing.T, d *ftl.Device, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	arrival := int64(0)
	pages := int64(d.Config().LogicalPages())
	for i := 0; i < n; i++ {
		var p int64
		if rng.Intn(10) < 9 {
			p = rng.Int63n(pages / 8)
		} else {
			p = rng.Int63n(pages)
		}
		arrival += int64(50 * time.Microsecond)
		req := trace.Request{Arrival: arrival, Offset: p * 4096, Length: 4096, Op: trace.OpWrite}
		if _, err := d.Serve(req); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

func buildDevice(t *testing.T, mut func(*ftl.Config)) (*ftl.Device, *dftl.FTL) {
	t.Helper()
	cfg := ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    1024,
	}
	if mut != nil {
		mut(&cfg)
	}
	tr := dftl.New(dftl.Config{CacheBytes: cfg.CacheBytes})
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func TestGCPolicyString(t *testing.T) {
	if ftl.GCGreedy.String() != "greedy" || ftl.GCCostBenefit.String() != "cost-benefit" {
		t.Fatal("policy strings")
	}
}

// TestCostBenefitGCWorks runs the cost-benefit policy through a skewed
// workload and checks correctness plus basic sanity (it must reclaim space
// and keep every mapping consistent).
func TestCostBenefitGCWorks(t *testing.T) {
	d, tr := buildDevice(t, func(c *ftl.Config) { c.GCPolicy = ftl.GCCostBenefit })
	hotColdWrites(t, d, 15000, 1)
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("cost-benefit GC never ran")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

// TestCostBenefitAvoidsRecopyingColdData compares the two policies on a
// hot/cold workload: cost-benefit should migrate no more valid pages than
// greedy does once age matters... in small devices the difference is noisy,
// so the assertion is loose: both complete and stay within 2× of each other.
func TestCostBenefitVsGreedyMigrations(t *testing.T) {
	dG, _ := buildDevice(t, nil)
	hotColdWrites(t, dG, 15000, 2)
	dC, _ := buildDevice(t, func(c *ftl.Config) { c.GCPolicy = ftl.GCCostBenefit })
	hotColdWrites(t, dC, 15000, 2)
	g, c := dG.Metrics().GCDataMigrations, dC.Metrics().GCDataMigrations
	if g == 0 || c == 0 {
		t.Fatalf("migrations g=%d c=%d", g, c)
	}
	if c > 2*g {
		t.Fatalf("cost-benefit migrated %d pages, greedy %d — implausible gap", c, g)
	}
}

// TestWearLevelingBoundsSpread checks that static wear leveling keeps the
// erase-count spread near its threshold under a pathologically skewed
// workload, while the unleveled device lets cold blocks fall far behind.
func TestWearLevelingBoundsSpread(t *testing.T) {
	dOff, _ := buildDevice(t, nil)
	hotColdWrites(t, dOff, 25000, 3)
	minOff, maxOff := dOff.EraseSpread()

	dOn, trOn := buildDevice(t, func(c *ftl.Config) { c.WearLevelThreshold = 8 })
	hotColdWrites(t, dOn, 25000, 3)
	minOn, maxOn := dOn.EraseSpread()

	if dOn.Metrics().WearLevelMoves == 0 {
		t.Fatal("wear leveling never triggered")
	}
	if spreadOn, spreadOff := maxOn-minOn, maxOff-minOff; spreadOn >= spreadOff {
		t.Fatalf("wear leveling did not reduce spread: %d (on) vs %d (off)", spreadOn, spreadOff)
	}
	// The spread may exceed the threshold transiently (leveling reacts one
	// block at a time) but must stay in its vicinity.
	if maxOn-minOn > 4*8 {
		t.Fatalf("spread %d far above threshold", maxOn-minOn)
	}
	if err := dOn.CheckConsistency(trOn.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestWearLevelingOffByDefault(t *testing.T) {
	d, _ := buildDevice(t, nil)
	hotColdWrites(t, d, 5000, 4)
	if d.Metrics().WearLevelMoves != 0 {
		t.Fatal("wear leveling ran without being enabled")
	}
}
