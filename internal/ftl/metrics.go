package ftl

import (
	"math/bits"
	"time"

	"repro/internal/obs"
)

// Metrics accumulates the counters the paper's evaluation reports. Field
// names follow Table 1's symbols where one exists.
type Metrics struct {
	// User-visible request accounting.
	Requests      int64
	PageReads     int64 // user data page reads
	PageWrites    int64 // user data page writes (Npa*Rw)
	ServiceTime   time.Duration
	ResponseTime  time.Duration // service + queueing, summed
	MaxResponse   time.Duration
	QueueTime     time.Duration
	UnmappedReads int64 // reads of never-written pages (no flash op)

	// Host-interface ops beyond plain read/write.
	TrimRequests  int64 // TRIM/discard requests served
	TrimmedPages  int64 // live logical pages invalidated by TRIM (GC credit)
	FlushRequests int64 // host flush barriers served
	FlushStalls   int64 // flushes that had to write ≥1 translation page back
	FUAWrites     int64 // forced-unit-access write requests served

	// Address-translation phase.
	Lookups          int64 // cache lookups (hits+misses)
	Hits             int64 // Hr = Hits/Lookups
	Replacements     int64 // cache entry replacements
	DirtyReplaced    int64 // Prd = DirtyReplaced/Replacements
	TransReadsAT     int64 // translation page reads during address translation
	TransWritesAT    int64 // Ntw: translation page writes during address translation
	BatchWritebacks  int64 // translation-page updates that cleaned ≥1 cached entry
	BatchCleaned     int64 // dirty entries cleaned by those updates
	PrefetchedLoaded int64 // entries loaded beyond the requested one

	// Garbage collection.
	GCDataCollections  int64 // Ngcd
	GCTransCollections int64 // Ngct
	GCDataMigrations   int64 // Nmd: valid data pages moved
	GCTransMigrations  int64 // Nmt: valid translation pages moved
	GCMapUpdates       int64 // migrated data pages needing a mapping update
	GCMapHits          int64 // Hgcr = GCMapHits/GCMapUpdates
	TransReadsGC       int64 // translation page reads during GC
	TransWritesGC      int64 // Ndt: translation page writes during GC (mapping updates)
	GCDataValidSum     int64 // Σ valid pages over collected data blocks (Vd mean)
	GCTransValidSum    int64 // Σ valid pages over collected translation blocks (Vt mean)
	GCTime             time.Duration
	WearLevelMoves     int64 // blocks recycled by static wear leveling

	// Flash totals (excluding the formatting pre-fill).
	FlashReads    int64
	FlashPrograms int64
	FlashErases   int64

	// Fault injection / reliability (see flash.FaultPlan).
	InjectedFaults int64 // injected chip faults the device observed
	FaultRetries   int64 // operations retried after a transient fault

	// RespHist is a log2 histogram of response times in microseconds:
	// bucket i counts responses in [2^(i-1), 2^i) µs (bucket 0: < 1 µs).
	// It feeds the percentile estimates.
	RespHist [48]int64

	// Parallel backend (internal/ssd). Channels/DiesPerChannel echo the
	// device geometry; Elapsed is the simulated time from the last metrics
	// reset to the latest completion; ChanBusy is each channel's summed
	// die-busy time over that window. MaxQueueDepth/QueueDepthSum are
	// filled by the frontend when a run is driven open-loop or at QD>1
	// (zero on the plain Serve path).
	Channels       int
	DiesPerChannel int
	Elapsed        time.Duration
	ChanBusy       [MaxChannels]time.Duration
	MaxQueueDepth  int64
	QueueDepthSum  int64 // Σ in-flight at admission; mean = /Requests

	// Phases holds one log-linear latency histogram per obs.Phase,
	// recorded per request by the device. Phases[obs.PhaseResponse] is fed
	// by ObserveResponse, so the standalone baseline devices get it too;
	// the finer phases (queue, translation hit/miss/prefetch, data,
	// writeback, GC stall) are attributed only by ftl.Device.
	Phases [obs.NumPhases]obs.Histogram
}

// ObserveResponse records one response time: the per-phase histogram, the
// legacy log2 histogram, and MaxResponse.
//
//ftl:hotpath
func (m *Metrics) ObserveResponse(d time.Duration) {
	if d > m.MaxResponse {
		m.MaxResponse = d
	}
	m.Phases[obs.PhaseResponse].Record(d)
	us := d.Microseconds()
	b := bits.Len64(uint64(us))
	if b >= len(m.RespHist) {
		b = len(m.RespHist) - 1
	}
	m.RespHist[b]++
}

// ResponsePercentile returns an upper-bound estimate of the p-quantile
// (0 < p ≤ 1) of response times, at log2 resolution.
func (m *Metrics) ResponsePercentile(p float64) time.Duration {
	var total int64
	for _, c := range m.RespHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range m.RespHist {
		cum += c
		if cum >= target {
			return time.Duration(int64(1)<<uint(i)) * time.Microsecond
		}
	}
	return m.MaxResponse
}

// Hr returns the cache hit ratio of address translation.
func (m *Metrics) Hr() float64 { return ratio(m.Hits, m.Lookups) }

// Prd returns the probability that a replaced cache entry was dirty.
func (m *Metrics) Prd() float64 { return ratio(m.DirtyReplaced, m.Replacements) }

// Hgcr returns the GC-time mapping-cache hit ratio.
func (m *Metrics) Hgcr() float64 { return ratio(m.GCMapHits, m.GCMapUpdates) }

// Rw returns the write ratio among user page accesses.
func (m *Metrics) Rw() float64 { return ratio(m.PageWrites, m.PageReads+m.PageWrites) }

// PageAccesses returns Npa, the number of user page accesses.
func (m *Metrics) PageAccesses() int64 { return m.PageReads + m.PageWrites }

// TransReads returns all translation page reads (AT phase + GC).
func (m *Metrics) TransReads() int64 { return m.TransReadsAT + m.TransReadsGC }

// TransWrites returns all translation page writes including migrations
// (Ntw + Ndt + Nmt).
func (m *Metrics) TransWrites() int64 {
	return m.TransWritesAT + m.TransWritesGC + m.GCTransMigrations
}

// Vd returns the mean number of valid pages in collected data blocks.
func (m *Metrics) Vd() float64 { return ratio(m.GCDataValidSum, m.GCDataCollections) }

// Vt returns the mean number of valid pages in collected translation blocks.
func (m *Metrics) Vt() float64 { return ratio(m.GCTransValidSum, m.GCTransCollections) }

// WriteAmplification returns Eq. 12: all flash page programs over user page
// writes. Infinite WA (read-only workload) reports 0.
func (m *Metrics) WriteAmplification() float64 {
	if m.PageWrites == 0 {
		return 0
	}
	extra := m.TransWritesAT + m.TransWritesGC + m.GCTransMigrations + m.GCDataMigrations
	return float64(m.PageWrites+extra) / float64(m.PageWrites)
}

// AvgResponse returns the mean request response time (queueing included).
func (m *Metrics) AvgResponse() time.Duration {
	if m.Requests == 0 {
		return 0
	}
	return m.ResponseTime / time.Duration(m.Requests)
}

// AvgService returns the mean request service time (queueing excluded).
func (m *Metrics) AvgService() time.Duration {
	if m.Requests == 0 {
		return 0
	}
	return m.ServiceTime / time.Duration(m.Requests)
}

// ChannelUtilization returns channel ch's busy fraction over the measured
// window: its dies' summed busy time divided by dies × elapsed time.
func (m *Metrics) ChannelUtilization(ch int) float64 {
	if m.Elapsed <= 0 || m.DiesPerChannel <= 0 || ch < 0 || ch >= m.Channels || ch >= MaxChannels {
		return 0
	}
	return float64(m.ChanBusy[ch]) / (float64(m.Elapsed) * float64(m.DiesPerChannel))
}

// AvgQueueDepth returns the mean in-flight request count at admission, when
// a frontend drove the run (0 otherwise).
func (m *Metrics) AvgQueueDepth() float64 { return ratio(m.QueueDepthSum, m.Requests) }

// Throughput returns served requests per second of simulated elapsed time.
func (m *Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Requests) / m.Elapsed.Seconds()
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Phase returns the histogram of one latency phase.
func (m *Metrics) Phase(p obs.Phase) *obs.Histogram { return &m.Phases[p] }

// Snapshot returns a copy of the metrics at this instant. Metrics is a
// value type (fixed arrays, no pointers), so the copy is independent of
// further accumulation.
func (m *Metrics) Snapshot() Metrics { return *m }

// Merge folds o into m: counters, durations and histograms add; watermarks
// (MaxResponse, MaxQueueDepth) and geometry echoes (Channels,
// DiesPerChannel) take the maximum. Merging snapshots from repeated runs of
// the same workload yields the aggregate a single longer run would report,
// which is how cmd/ftlbench pools percentiles across its repetitions.
func (m *Metrics) Merge(o *Metrics) {
	m.Requests += o.Requests
	m.PageReads += o.PageReads
	m.PageWrites += o.PageWrites
	m.ServiceTime += o.ServiceTime
	m.ResponseTime += o.ResponseTime
	m.QueueTime += o.QueueTime
	m.UnmappedReads += o.UnmappedReads
	m.TrimRequests += o.TrimRequests
	m.TrimmedPages += o.TrimmedPages
	m.FlushRequests += o.FlushRequests
	m.FlushStalls += o.FlushStalls
	m.FUAWrites += o.FUAWrites
	m.Lookups += o.Lookups
	m.Hits += o.Hits
	m.Replacements += o.Replacements
	m.DirtyReplaced += o.DirtyReplaced
	m.TransReadsAT += o.TransReadsAT
	m.TransWritesAT += o.TransWritesAT
	m.BatchWritebacks += o.BatchWritebacks
	m.BatchCleaned += o.BatchCleaned
	m.PrefetchedLoaded += o.PrefetchedLoaded
	m.GCDataCollections += o.GCDataCollections
	m.GCTransCollections += o.GCTransCollections
	m.GCDataMigrations += o.GCDataMigrations
	m.GCTransMigrations += o.GCTransMigrations
	m.GCMapUpdates += o.GCMapUpdates
	m.GCMapHits += o.GCMapHits
	m.TransReadsGC += o.TransReadsGC
	m.TransWritesGC += o.TransWritesGC
	m.GCDataValidSum += o.GCDataValidSum
	m.GCTransValidSum += o.GCTransValidSum
	m.GCTime += o.GCTime
	m.WearLevelMoves += o.WearLevelMoves
	m.FlashReads += o.FlashReads
	m.FlashPrograms += o.FlashPrograms
	m.FlashErases += o.FlashErases
	m.InjectedFaults += o.InjectedFaults
	m.FaultRetries += o.FaultRetries
	m.Elapsed += o.Elapsed
	m.QueueDepthSum += o.QueueDepthSum
	if o.MaxResponse > m.MaxResponse {
		m.MaxResponse = o.MaxResponse
	}
	if o.MaxQueueDepth > m.MaxQueueDepth {
		m.MaxQueueDepth = o.MaxQueueDepth
	}
	if o.Channels > m.Channels {
		m.Channels = o.Channels
	}
	if o.DiesPerChannel > m.DiesPerChannel {
		m.DiesPerChannel = o.DiesPerChannel
	}
	for i := range m.RespHist {
		m.RespHist[i] += o.RespHist[i]
	}
	for i := range m.ChanBusy {
		m.ChanBusy[i] += o.ChanBusy[i]
	}
	for i := range m.Phases {
		m.Phases[i].Merge(&o.Phases[i])
	}
}

// Counters returns the cumulative counter subset exported on each
// -metrics-out snapshot line.
func (m *Metrics) Counters() obs.Counters {
	return obs.Counters{
		Requests:      m.Requests,
		PageReads:     m.PageReads,
		PageWrites:    m.PageWrites,
		Lookups:       m.Lookups,
		Hits:          m.Hits,
		FlashReads:    m.FlashReads,
		FlashPrograms: m.FlashPrograms,
		FlashErases:   m.FlashErases,
		TransReads:    m.TransReads(),
		TransWrites:   m.TransWrites(),
		Prefetched:    m.PrefetchedLoaded,
		TrimmedPages:  m.TrimmedPages,
		Flushes:       m.FlushRequests,
		Collections:   m.GCDataCollections + m.GCTransCollections,
		ResponseNS:    int64(m.ResponseTime),
		ServiceNS:     int64(m.ServiceTime),
		QueueNS:       int64(m.QueueTime),
		GCNS:          int64(m.GCTime),
	}
}

// PhaseSnapshots returns the quantile summary of every phase histogram, in
// obs.Phase order.
func (m *Metrics) PhaseSnapshots() []obs.PhaseSnapshot {
	out := make([]obs.PhaseSnapshot, obs.NumPhases)
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		out[p] = m.Phases[p].Summary(p.String())
	}
	return out
}
