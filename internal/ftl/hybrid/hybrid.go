// Package hybrid implements a BAST-style log-buffer hybrid FTL (Lee et al.,
// "A log buffer-based flash translation layer using fully-associative sector
// translation" lineage; the paper's §2.1 taxonomy).
//
// Data blocks are block-mapped (fixed page offsets); a small pool of
// page-mapped log blocks absorbs updates, one log block dedicated per
// logical block (the BAST discipline). When a logical block needs a log
// block and the pool is exhausted, the least-recently-used log block is
// merged with its data block — a full merge (copy the newest version of
// every page into a fresh block) unless the log block happens to contain
// the whole block written in order, in which case it is switched in place.
//
// Hybrid FTLs need far less RAM than page-level mapping but collapse under
// random writes, where every few updates force a full merge — the paper's
// §2.1 motivation for demand-based page-level FTLs. The
// BenchmarkMappingGranularity harness quantifies this against blockftl and
// the page-level schemes.
package hybrid

import (
	"fmt"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
	"repro/internal/trace"
)

// Config parameterizes the hybrid device.
type Config struct {
	// Device geometry; see ftl.Config.
	Device ftl.Config
	// LogBlocks is the size of the log-block pool (default 8).
	LogBlocks int
}

// logBlock is one page-mapped log block dedicated to a logical block.
type logBlock struct {
	node   lru.Node[*logBlock]
	lb     int           // owning logical block
	blk    flash.BlockID // physical block
	next   int           // append pointer
	latest map[int]int   // logical offset → log offset of newest version
}

// Device is a standalone hybrid-mapped SSD simulator.
type Device struct {
	cfg  Config
	chip *flash.Chip

	blockMap []flash.BlockID // logical block → physical data block, -1
	logs     map[int]*logBlock
	logLRU   lru.List[*logBlock] // MRU..LRU log blocks
	free     []flash.BlockID

	logicalBlocks int
	ppb           int

	clock time.Duration
	m     ftl.Metrics

	truth []flash.PPN
}

// New builds a hybrid device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.LogBlocks == 0 {
		cfg.LogBlocks = 8
	}
	full := ftl.DefaultConfig(cfg.Device.LogicalBytes)
	if cfg.Device.PageSize != 0 {
		full.PageSize = cfg.Device.PageSize
	}
	if cfg.Device.PagesPerBlock != 0 {
		full.PagesPerBlock = cfg.Device.PagesPerBlock
	}
	if cfg.Device.OverProvision != 0 {
		full.OverProvision = cfg.Device.OverProvision
	}
	if cfg.Device.ReadLatency != 0 {
		full.ReadLatency = cfg.Device.ReadLatency
	}
	if cfg.Device.WriteLatency != 0 {
		full.WriteLatency = cfg.Device.WriteLatency
	}
	if cfg.Device.EraseLatency != 0 {
		full.EraseLatency = cfg.Device.EraseLatency
	}
	cfg.Device = full
	ppb := full.PagesPerBlock
	logicalPages := full.LogicalPages()
	logicalBlocks := int((logicalPages + int64(ppb) - 1) / int64(ppb))
	phys := logicalBlocks + cfg.LogBlocks + int(float64(logicalBlocks)*full.OverProvision)
	if phys < logicalBlocks+cfg.LogBlocks+2 {
		phys = logicalBlocks + cfg.LogBlocks + 2
	}
	chip, err := flash.New(flash.Config{
		PageSize:        full.PageSize,
		PagesPerBlock:   ppb,
		NumBlocks:       phys,
		ReadLatency:     full.ReadLatency,
		WriteLatency:    full.WriteLatency,
		EraseLatency:    full.EraseLatency,
		AllowOutOfOrder: true, // data blocks keep fixed offsets
	})
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:           cfg,
		chip:          chip,
		blockMap:      make([]flash.BlockID, logicalBlocks),
		logs:          make(map[int]*logBlock),
		logicalBlocks: logicalBlocks,
		ppb:           ppb,
		truth:         make([]flash.PPN, logicalPages),
	}
	for i := range d.blockMap {
		d.blockMap[i] = -1
	}
	for i := range d.truth {
		d.truth[i] = flash.InvalidPPN
	}
	for b := phys - 1; b >= 0; b-- {
		d.free = append(d.free, flash.BlockID(b))
	}
	return d, nil
}

// MappingTableBytes returns the hybrid RAM footprint: the block map plus
// page-level maps for the log pool only.
func (d *Device) MappingTableBytes() int64 {
	return int64(d.logicalBlocks)*4 + int64(d.cfg.LogBlocks)*int64(d.ppb)*8
}

// Metrics returns the accumulated counters.
func (d *Device) Metrics() ftl.Metrics { return d.m }

// Serve executes one request FCFS.
func (d *Device) Serve(req trace.Request) (time.Duration, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	if req.End() > d.cfg.Device.LogicalBytes {
		return 0, fmt.Errorf("hybrid: request beyond capacity")
	}
	arrival := time.Duration(req.Arrival)
	start := d.clock
	if arrival > start {
		start = arrival
	}
	var acc time.Duration
	switch req.Op {
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA:
		first, last := req.Pages(d.cfg.Device.PageSize)
		for lpn := first; lpn <= last; lpn++ {
			var lat time.Duration
			var err error
			if req.IsWrite() {
				d.m.PageWrites++
				lat, err = d.writePage(lpn)
			} else {
				d.m.PageReads++
				lat, err = d.readPage(lpn)
			}
			if err != nil {
				return 0, err
			}
			acc += lat
		}
	case trace.OpTrim, trace.OpFlush:
		// TRIM is advisory and this pre-TRIM design ignores it (the data
		// stays until overwritten, which the spec permits); every write is
		// already synchronous, so a flush barrier has nothing to drain.
	default:
		return 0, fmt.Errorf("hybrid: unhandled request op %v", req.Op)
	}
	d.clock = start + acc
	resp := d.clock - arrival
	d.m.Requests++
	d.m.ServiceTime += acc
	d.m.ResponseTime += resp
	d.m.QueueTime += start - arrival
	d.m.ObserveResponse(resp)
	if ftl.SanitizerEnabled {
		if err := ftl.SanitizeCheck("hybrid", d.CheckConsistency); err != nil {
			return 0, err
		}
	}
	return resp, nil
}

// Run serves every request.
func (d *Device) Run(reqs []trace.Request) (ftl.Metrics, error) {
	for i := range reqs {
		if _, err := d.Serve(reqs[i]); err != nil {
			return d.m, fmt.Errorf("hybrid: request %d: %w", i, err)
		}
	}
	return d.m, nil
}

// locate returns the newest physical page of lpn.
func (d *Device) locate(lpn int64) (flash.PPN, bool) {
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))
	if lg := d.logs[lb]; lg != nil {
		if lo, ok := lg.latest[off]; ok {
			return d.chip.PageAt(lg.blk, lo), true
		}
	}
	if phys := d.blockMap[lb]; phys >= 0 {
		p := d.chip.PageAt(phys, off)
		if d.chip.State(p) == flash.PageValid {
			return p, true
		}
	}
	return flash.InvalidPPN, false
}

func (d *Device) readPage(lpn int64) (time.Duration, error) {
	ppn, ok := d.locate(lpn)
	if !ok {
		if d.truth[lpn].Valid() {
			return 0, fmt.Errorf("hybrid: lost mapping for lpn %d", lpn)
		}
		d.m.UnmappedReads++
		return 0, nil
	}
	if ppn != d.truth[lpn] {
		return 0, fmt.Errorf("hybrid: mistranslated lpn %d: %d vs truth %d", lpn, ppn, d.truth[lpn])
	}
	lat, err := d.chip.Read(ppn)
	if err != nil {
		return 0, err
	}
	d.m.FlashReads++
	return lat, nil
}

func (d *Device) writePage(lpn int64) (time.Duration, error) {
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))

	// First write of this page with the data-block slot free: write in
	// place (fixed offset), provided no newer version sits in a log.
	if lg := d.logs[lb]; lg == nil || !hasOff(lg, off) {
		if phys := d.blockMap[lb]; phys < 0 {
			blk, err := d.allocBlock()
			if err != nil {
				return 0, err
			}
			d.blockMap[lb] = blk
		}
		p := d.chip.PageAt(d.blockMap[lb], off)
		if d.chip.State(p) == flash.PageFree {
			lat, err := d.chip.Program(p, flash.Meta{Kind: flash.KindData, Tag: lpn})
			if err != nil {
				return 0, err
			}
			d.m.FlashPrograms++
			d.truth[lpn] = p
			return lat, nil
		}
	}

	// Update: append to the logical block's log block.
	var acc time.Duration
	lg, lat, err := d.logFor(lb)
	acc += lat
	if err != nil {
		return 0, err
	}
	if lg.next >= d.ppb {
		// Log full: merge, then retry as a fresh update.
		lat, err := d.merge(lb)
		acc += lat
		if err != nil {
			return 0, err
		}
		lg, lat, err = d.logFor(lb)
		acc += lat
		if err != nil {
			return 0, err
		}
	}
	old, hadOld := d.locate(lpn)
	p := d.chip.PageAt(lg.blk, lg.next)
	wlat, err := d.chip.Program(p, flash.Meta{Kind: flash.KindData, Tag: lpn})
	if err != nil {
		return 0, err
	}
	acc += wlat
	d.m.FlashPrograms++
	lg.latest[off] = lg.next
	lg.next++
	d.logLRU.MoveToFront(&lg.node)
	if hadOld {
		if err := d.chip.Invalidate(old); err != nil {
			return 0, err
		}
	}
	d.truth[lpn] = p
	return acc, nil
}

func hasOff(lg *logBlock, off int) bool {
	_, ok := lg.latest[off]
	return ok
}

// logFor returns lb's log block, allocating one (and merging a victim when
// the pool is exhausted).
func (d *Device) logFor(lb int) (*logBlock, time.Duration, error) {
	if lg := d.logs[lb]; lg != nil {
		return lg, 0, nil
	}
	var acc time.Duration
	for len(d.logs) >= d.cfg.LogBlocks {
		victim := d.logLRU.Back().Value
		lat, err := d.merge(victim.lb)
		acc += lat
		if err != nil {
			return nil, acc, err
		}
	}
	blk, err := d.allocBlock()
	if err != nil {
		return nil, acc, err
	}
	lg := &logBlock{lb: lb, blk: blk, latest: make(map[int]int)}
	lg.node.Value = lg
	d.logs[lb] = lg
	d.logLRU.PushFront(&lg.node)
	return lg, acc, nil
}

// merge consolidates lb's newest page versions into one block. A switch
// merge (the log block holds every page at its home offset) promotes the
// log block to data block; otherwise a full merge copies into a fresh block.
func (d *Device) merge(lb int) (time.Duration, error) {
	lg := d.logs[lb]
	if lg == nil {
		return 0, nil
	}
	var acc time.Duration
	old := d.blockMap[lb]
	base := int64(lb) * int64(d.ppb)

	if d.isSwitchable(lg) {
		// Switch merge: the log block IS the new data block.
		if old >= 0 {
			lat, err := d.retireBlock(old)
			acc += lat
			if err != nil {
				return acc, err
			}
		}
		d.blockMap[lb] = lg.blk
		d.removeLog(lg)
		d.m.GCDataCollections++
		return acc, nil
	}

	newBlk, err := d.allocBlock()
	if err != nil {
		return acc, err
	}
	for off := 0; off < d.ppb; off++ {
		lpn := base + int64(off)
		src, ok := d.locate(lpn)
		if !ok {
			continue
		}
		lat, err := d.chip.Read(src)
		if err != nil {
			return acc, err
		}
		d.m.FlashReads++
		acc += lat
		dst := d.chip.PageAt(newBlk, off)
		lat, err = d.chip.Program(dst, flash.Meta{Kind: flash.KindData, Tag: lpn})
		if err != nil {
			return acc, err
		}
		d.m.FlashPrograms++
		d.m.GCDataMigrations++
		acc += lat
		d.truth[lpn] = dst
	}
	if old >= 0 {
		lat, err := d.retireBlock(old)
		acc += lat
		if err != nil {
			return acc, err
		}
	}
	lat, err := d.retireBlock(lg.blk)
	acc += lat
	if err != nil {
		return acc, err
	}
	d.removeLog(lg)
	d.blockMap[lb] = newBlk
	d.m.GCDataCollections++
	return acc, nil
}

// isSwitchable reports whether every page of the logical block sits in the
// log block at its home offset (a sequentially rewritten block).
func (d *Device) isSwitchable(lg *logBlock) bool {
	if len(lg.latest) != d.ppb {
		return false
	}
	for off, lo := range lg.latest {
		if off != lo {
			return false
		}
	}
	return true
}

// retireBlock invalidates all remaining valid pages of blk and erases it.
func (d *Device) retireBlock(blk flash.BlockID) (time.Duration, error) {
	for i := 0; i < d.ppb; i++ {
		p := d.chip.PageAt(blk, i)
		if d.chip.State(p) == flash.PageValid {
			if err := d.chip.Invalidate(p); err != nil {
				return 0, err
			}
		}
	}
	lat, err := d.chip.Erase(blk)
	if err != nil {
		return 0, err
	}
	d.m.FlashErases++
	d.free = append(d.free, blk)
	return lat, nil
}

func (d *Device) removeLog(lg *logBlock) {
	d.logLRU.Remove(&lg.node)
	delete(d.logs, lg.lb)
}

func (d *Device) allocBlock() (flash.BlockID, error) {
	if len(d.free) == 0 {
		return -1, fmt.Errorf("hybrid: out of free blocks")
	}
	b := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	return b, nil
}

// CheckConsistency verifies the truth table against the chip.
func (d *Device) CheckConsistency() error {
	if err := d.chip.CheckInvariants(); err != nil {
		return err
	}
	for lpn, ppn := range d.truth {
		if !ppn.Valid() {
			continue
		}
		if st := d.chip.State(ppn); st != flash.PageValid {
			return fmt.Errorf("hybrid: truth[%d]=%d in state %v", lpn, ppn, st)
		}
		if got, ok := d.locate(int64(lpn)); !ok || got != ppn {
			return fmt.Errorf("hybrid: locate(%d) = %d,%v, truth %d", lpn, got, ok, ppn)
		}
	}
	return nil
}
