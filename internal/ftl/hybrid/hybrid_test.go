package hybrid

import (
	"math/rand"
	"testing"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func newDevice(t *testing.T, logBlocks int) *Device {
	t.Helper()
	d, err := New(Config{
		Device: ftl.Config{
			LogicalBytes:  4 << 20, // 1024 pages, 32 logical blocks
			PageSize:      4096,
			PagesPerBlock: 32,
			OverProvision: 0.15,
		},
		LogBlocks: logBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestMappingFootprintBetweenBlockAndPage(t *testing.T) {
	d := newDevice(t, 8)
	blockTable := int64(32 * 4)
	pageTable := int64(1024 * 8)
	got := d.MappingTableBytes()
	if got <= blockTable || got >= pageTable {
		t.Fatalf("hybrid table %d not between block %d and page %d", got, blockTable, pageTable)
	}
}

func TestFirstWritesGoInPlace(t *testing.T) {
	d := newDevice(t, 4)
	arrival := int64(0)
	for p := int64(0); p < 64; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	m := d.Metrics()
	if m.FlashPrograms != 64 || m.FlashErases != 0 {
		t.Fatalf("programs %d erases %d; first writes must be in place", m.FlashPrograms, m.FlashErases)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesGoToLogBlock(t *testing.T) {
	d := newDevice(t, 4)
	arrival := int64(0)
	for p := int64(0); p < 8; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	// Overwrite: appended to a log block, no merge yet.
	for p := int64(0); p < 8; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	m := d.Metrics()
	if m.FlashErases != 0 {
		t.Fatalf("erases = %d before log exhaustion", m.FlashErases)
	}
	if len(d.logs) != 1 {
		t.Fatalf("log blocks = %d, want 1", len(d.logs))
	}
	// Reads must return the newest (log) version.
	for p := int64(0); p < 8; p++ {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLogExhaustionForcesMerge(t *testing.T) {
	d := newDevice(t, 2)
	arrival := int64(0)
	// Touch 3 logical blocks with updates: the third log allocation must
	// merge the LRU log block.
	for lb := int64(0); lb < 3; lb++ {
		base := lb * 32
		for p := base; p < base+4; p++ {
			if _, err := d.Serve(wr(arrival, p)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(1e6)
		}
		for p := base; p < base+4; p++ { // updates → log block
			if _, err := d.Serve(wr(arrival, p)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(1e6)
		}
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("no merge despite log pool exhaustion")
	}
	if len(d.logs) > 2 {
		t.Fatalf("log blocks = %d exceeds pool", len(d.logs))
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchMergeOnSequentialRewrite(t *testing.T) {
	d := newDevice(t, 1)
	arrival := int64(0)
	// Write block 0 fully, then rewrite it fully in order: the log block
	// ends up switchable and the merge must copy nothing.
	for p := int64(0); p < 32; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	for p := int64(0); p < 32; p++ {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	migBefore := d.Metrics().GCDataMigrations
	// Force the merge by starting a log for another block.
	if _, err := d.Serve(wr(arrival, 40)); err != nil {
		t.Fatal(err)
	}
	arrival += int64(1e6)
	if _, err := d.Serve(wr(arrival, 40)); err != nil { // update → needs log → merge victim
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("no merge")
	}
	if m.GCDataMigrations != migBefore {
		t.Fatalf("switch merge copied %d pages, want 0", m.GCDataMigrations-migBefore)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorkloadConsistency(t *testing.T) {
	d := newDevice(t, 6)
	rng := rand.New(rand.NewSource(5))
	arrival := int64(0)
	for i := 0; i < 6000; i++ {
		p := int64(rng.Intn(1024))
		arrival += int64(1e6)
		var req trace.Request
		if rng.Intn(4) == 0 {
			req = rd(arrival, p)
		} else {
			req = wr(arrival, p)
		}
		if _, err := d.Serve(req); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("random updates never merged")
	}
}

func TestRejectsInvalid(t *testing.T) {
	d := newDevice(t, 2)
	if _, err := d.Serve(wr(0, 1024)); err == nil {
		t.Fatal("beyond capacity accepted")
	}
	if _, err := d.Serve(trace.Request{Offset: 0, Length: 0}); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestRunHelper(t *testing.T) {
	d := newDevice(t, 2)
	if _, err := d.Run([]trace.Request{wr(0, 0), rd(1e6, 0)}); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Requests != 2 {
		t.Fatal("request count")
	}
}
