package ftl

import (
	"time"

	"repro/internal/flash"
)

// Default flash geometry (the paper's Table 3 configuration). Anything that
// needs a page size without a Config in hand — translator constructors sizing
// cache slots, capacity math in the harness — should name these rather than
// repeat the numbers; the geometry analyzer in cmd/ftlint enforces that.
const (
	// DefaultPageBytes is the default flash page size (4 KB).
	DefaultPageBytes = 4096
	// DefaultEntriesPerTP is the number of 4 B mapping entries in one
	// translation page of the default geometry.
	DefaultEntriesPerTP = DefaultPageBytes / EntryBytesInFlash
)

// Config describes a simulated SSD.
type Config struct {
	// LogicalBytes is the advertised device capacity.
	LogicalBytes int64
	// PageSize and PagesPerBlock set flash geometry (default Table 3:
	// 4 KB pages, 64 pages/block).
	PageSize      int
	PagesPerBlock int
	// OverProvision is the fraction of extra physical capacity
	// (default 0.15 per Table 3).
	OverProvision float64
	// ReadLatency, WriteLatency, EraseLatency override the flash timing
	// when non-zero.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	EraseLatency time.Duration
	// CacheBytes is the mapping-cache budget available to the Translator.
	// The GTD is not charged against it (the paper sizes the cache as
	// "block-level table plus the GTD", holding the GTD resident).
	// Zero selects DefaultCacheBytes(LogicalBytes).
	CacheBytes int64
	// GCThresholdBlocks triggers garbage collection when the free-block
	// count drops to it. Zero selects a default of max(4, 1% of blocks).
	GCThresholdBlocks int
	// GCPolicy selects the victim-selection policy (default GCGreedy).
	GCPolicy GCPolicy
	// WearLevelThreshold, when non-zero, enables static wear leveling:
	// whenever the erase-count spread (hottest block minus coldest block)
	// exceeds the threshold during GC, the coldest block's content is
	// migrated so the block rejoins circulation (§2.3's wear-leveling
	// discussion).
	WearLevelThreshold int
	// EraseLimit, if non-zero, injects endurance failures (see flash.Config).
	EraseLimit int
	// Seed seeds the device's private RNG (preconditioning order, and the
	// anchor that makes fault-injection repros bit-for-bit reproducible).
	// Zero selects a fixed default.
	Seed int64
	// FaultRetries bounds how many times the device retries one flash
	// operation after a transient injected fault before surfacing the
	// error (0 selects 3). See flash.FaultPlan.
	FaultRetries int
}

// GCPolicy selects how garbage collection picks victim blocks.
type GCPolicy uint8

const (
	// GCGreedy picks the block with the most invalid pages — minimal
	// immediate migration cost, the policy of the paper's evaluation.
	GCGreedy GCPolicy = iota
	// GCCostBenefit picks the block maximizing age*(1-u)/(2u), the
	// classic cost-benefit policy (Kawaguchi et al.): it prefers older
	// blocks whose pages are likelier to stay valid, trading a little
	// immediate cost for fewer re-migrations of cold data.
	GCCostBenefit
)

func (p GCPolicy) String() string {
	switch p {
	case GCGreedy:
		return "greedy"
	case GCCostBenefit:
		return "cost-benefit"
	default:
		return "GCPolicy(?)"
	}
}

// DefaultConfig returns the paper's SSD configuration for the given logical
// capacity.
func DefaultConfig(logicalBytes int64) Config {
	return Config{
		LogicalBytes:  logicalBytes,
		PageSize:      DefaultPageBytes,
		PagesPerBlock: 64,
		OverProvision: 0.15,
		ReadLatency:   25 * time.Microsecond,
		WriteLatency:  200 * time.Microsecond,
		EraseLatency:  1500 * time.Microsecond,
		CacheBytes:    DefaultCacheBytes(logicalBytes),
	}
}

// DefaultCacheBytes returns the paper's cache-size convention: the size of a
// block-level FTL's mapping table for the same capacity (4 B per 256 KB
// block). This yields 8 KB for a 512 MB device and 256 KB for 16 GB,
// matching §5.1.
func DefaultCacheBytes(logicalBytes int64) int64 {
	blockBytes := int64(DefaultPageBytes * 64)
	blocks := (logicalBytes + blockBytes - 1) / blockBytes
	return blocks * 4
}

// normalize fills defaults and derives sizes.
func (c Config) normalize() Config {
	if c.PageSize == 0 {
		c.PageSize = DefaultPageBytes
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 64
	}
	if c.OverProvision == 0 {
		c.OverProvision = 0.15
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes(c.LogicalBytes)
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 25 * time.Microsecond
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 200 * time.Microsecond
	}
	if c.EraseLatency == 0 {
		c.EraseLatency = 1500 * time.Microsecond
	}
	return c
}

// LogicalPages returns the number of logical pages the device advertises.
func (c Config) LogicalPages() int64 {
	ps := c.PageSize
	if ps == 0 {
		ps = DefaultPageBytes
	}
	return c.LogicalBytes / int64(ps)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.normalize()
	switch {
	case c.LogicalBytes <= 0:
		return errf("non-positive logical capacity %d", c.LogicalBytes)
	case c.LogicalBytes%int64(c.PageSize) != 0:
		return errf("logical capacity %d not page aligned", c.LogicalBytes)
	case c.OverProvision < 0:
		return errf("negative over-provisioning %v", c.OverProvision)
	case c.CacheBytes < 0:
		return errf("negative cache budget %d", c.CacheBytes)
	}
	if c.LogicalPages() == 0 {
		return errf("capacity smaller than one page")
	}
	return nil
}

// flashConfig derives the physical chip configuration. Physical capacity is
// the logical capacity plus over-provisioning, plus room for the mapping
// table itself (translation pages live in flash too) and a small GC reserve.
func (c Config) flashConfig() flash.Config {
	logicalPages := c.LogicalPages()
	dataBlocks := (logicalPages + int64(c.PagesPerBlock) - 1) / int64(c.PagesPerBlock)
	entriesPerTP := int64(c.PageSize / EntryBytesInFlash)
	numTPs := (logicalPages + entriesPerTP - 1) / entriesPerTP
	transBlocks := (numTPs + int64(c.PagesPerBlock) - 1) / int64(c.PagesPerBlock)
	total := dataBlocks + transBlocks
	phys := total + int64(float64(total)*c.OverProvision)
	if min := total + int64(c.gcThreshold())*2 + 2; phys < min {
		phys = min
	}
	return flash.Config{
		PageSize:      c.PageSize,
		PagesPerBlock: c.PagesPerBlock,
		NumBlocks:     int(phys),
		ReadLatency:   c.ReadLatency,
		WriteLatency:  c.WriteLatency,
		EraseLatency:  c.EraseLatency,
		EraseLimit:    c.EraseLimit,
	}
}

func (c Config) gcThreshold() int {
	if c.GCThresholdBlocks > 0 {
		return c.GCThresholdBlocks
	}
	logicalPages := c.LogicalPages()
	blocks := int(logicalPages / int64(c.PagesPerBlock))
	t := blocks / 100
	if t < 4 {
		t = 4
	}
	return t
}
