package ftl

import (
	"time"

	"repro/internal/flash"
)

// Default flash geometry (the paper's Table 3 configuration). Anything that
// needs a page size without a Config in hand — translator constructors sizing
// cache slots, capacity math in the harness — should name these rather than
// repeat the numbers; the geometry analyzer in cmd/ftlint enforces that.
const (
	// DefaultPageBytes is the default flash page size (4 KB).
	DefaultPageBytes = 4096
	// DefaultEntriesPerTP is the number of 4 B mapping entries in one
	// translation page of the default geometry.
	DefaultEntriesPerTP = DefaultPageBytes / EntryBytesInFlash
	// DefaultChannels and DefaultDies are the parallelism of the paper's
	// single-chip device: one channel, one die. The multi-channel backend
	// (internal/ssd) is opt-in precisely so that this default reproduces
	// the paper's scalar-clock timing bit-for-bit.
	DefaultChannels = 1
	// DefaultDies is the default number of dies per channel.
	DefaultDies = 1
	// MaxChannels bounds Config.Channels; Metrics carries a fixed-size
	// per-channel busy-time array so it stays a comparable value type.
	MaxChannels = 16
)

// TPPlacement selects where translation pages are physically placed on a
// multi-channel device.
type TPPlacement uint8

const (
	// TPStriped round-robins translation blocks across all dies, so
	// translation-page traffic shares every channel with data (default).
	TPStriped TPPlacement = iota
	// TPPinned confines translation blocks to the dies of channel 0,
	// keeping translation traffic off the data channels at the cost of
	// serializing it behind one channel.
	TPPinned
)

func (p TPPlacement) String() string {
	switch p {
	case TPStriped:
		return "striped"
	case TPPinned:
		return "pinned"
	default:
		return "TPPlacement(?)"
	}
}

// Config describes a simulated SSD.
type Config struct {
	// LogicalBytes is the advertised device capacity.
	LogicalBytes int64
	// PageSize and PagesPerBlock set flash geometry (default Table 3:
	// 4 KB pages, 64 pages/block).
	PageSize      int
	PagesPerBlock int
	// OverProvision is the fraction of extra physical capacity
	// (default 0.15 per Table 3).
	OverProvision float64
	// Channels and Dies set the parallel backend's geometry: Channels
	// independent buses with Dies flash dies each (defaults
	// DefaultChannels × DefaultDies = 1×1, the paper's serial chip).
	// Blocks interleave across dies and the block manager stripes
	// consecutive page allocations across channels, so independent flash
	// operations overlap in simulated time (see internal/ssd).
	Channels int
	Dies     int
	// TransPlacement selects where translation pages live on a
	// multi-channel device: striped across all dies (default) or pinned
	// to channel 0. Irrelevant at 1×1.
	TransPlacement TPPlacement
	// ReadLatency, WriteLatency, EraseLatency override the flash timing
	// when non-zero.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	EraseLatency time.Duration
	// CacheBytes is the mapping-cache budget available to the Translator.
	// The GTD is not charged against it (the paper sizes the cache as
	// "block-level table plus the GTD", holding the GTD resident).
	// Zero selects DefaultCacheBytes(LogicalBytes).
	CacheBytes int64
	// GCThresholdBlocks triggers garbage collection when the free-block
	// count drops to it. Zero selects a default of max(4, 1% of blocks).
	GCThresholdBlocks int
	// GCPolicy selects the victim-selection policy (default GCGreedy).
	GCPolicy GCPolicy
	// WearLevelThreshold, when non-zero, enables static wear leveling:
	// whenever the erase-count spread (hottest block minus coldest block)
	// exceeds the threshold during GC, the coldest block's content is
	// migrated so the block rejoins circulation (§2.3's wear-leveling
	// discussion).
	WearLevelThreshold int
	// EraseLimit, if non-zero, injects endurance failures (see flash.Config).
	EraseLimit int
	// Seed seeds the device's private RNG (preconditioning order, and the
	// anchor that makes fault-injection repros bit-for-bit reproducible).
	// Zero selects a fixed default.
	Seed int64
	// FaultRetries bounds how many times the device retries one flash
	// operation after a transient injected fault before surfacing the
	// error (0 selects 3). See flash.FaultPlan.
	FaultRetries int
}

// GCPolicy selects how garbage collection picks victim blocks.
type GCPolicy uint8

const (
	// GCGreedy picks the block with the most invalid pages — minimal
	// immediate migration cost, the policy of the paper's evaluation.
	GCGreedy GCPolicy = iota
	// GCCostBenefit picks the block maximizing age*(1-u)/(2u), the
	// classic cost-benefit policy (Kawaguchi et al.): it prefers older
	// blocks whose pages are likelier to stay valid, trading a little
	// immediate cost for fewer re-migrations of cold data.
	GCCostBenefit
)

func (p GCPolicy) String() string {
	switch p {
	case GCGreedy:
		return "greedy"
	case GCCostBenefit:
		return "cost-benefit"
	default:
		return "GCPolicy(?)"
	}
}

// DefaultConfig returns the paper's SSD configuration for the given logical
// capacity.
func DefaultConfig(logicalBytes int64) Config {
	return Config{
		LogicalBytes:  logicalBytes,
		PageSize:      DefaultPageBytes,
		PagesPerBlock: 64,
		OverProvision: 0.15,
		ReadLatency:   25 * time.Microsecond,
		WriteLatency:  200 * time.Microsecond,
		EraseLatency:  1500 * time.Microsecond,
		CacheBytes:    DefaultCacheBytes(logicalBytes),
	}
}

// DefaultCacheBytes returns the paper's cache-size convention: the size of a
// block-level FTL's mapping table for the same capacity (4 B per 256 KB
// block). This yields 8 KB for a 512 MB device and 256 KB for 16 GB,
// matching §5.1.
func DefaultCacheBytes(logicalBytes int64) int64 {
	blockBytes := int64(DefaultPageBytes * 64)
	blocks := (logicalBytes + blockBytes - 1) / blockBytes
	return blocks * 4
}

// normalize fills defaults and derives sizes.
func (c Config) normalize() Config {
	if c.PageSize == 0 {
		c.PageSize = DefaultPageBytes
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 64
	}
	if c.OverProvision == 0 {
		c.OverProvision = 0.15
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes(c.LogicalBytes)
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 25 * time.Microsecond
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 200 * time.Microsecond
	}
	if c.EraseLatency == 0 {
		c.EraseLatency = 1500 * time.Microsecond
	}
	if c.Channels == 0 {
		c.Channels = DefaultChannels
	}
	if c.Dies == 0 {
		c.Dies = DefaultDies
	}
	return c
}

// LogicalPages returns the number of logical pages the device advertises.
func (c Config) LogicalPages() int64 {
	ps := c.PageSize
	if ps == 0 {
		ps = DefaultPageBytes
	}
	return c.LogicalBytes / int64(ps)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.normalize()
	switch {
	case c.LogicalBytes <= 0:
		return errf("non-positive logical capacity %d", c.LogicalBytes)
	case c.LogicalBytes%int64(c.PageSize) != 0:
		return errf("logical capacity %d not page aligned", c.LogicalBytes)
	case c.OverProvision < 0:
		return errf("negative over-provisioning %v", c.OverProvision)
	case c.CacheBytes < 0:
		return errf("negative cache budget %d", c.CacheBytes)
	case c.Channels < 0 || c.Dies < 0:
		return errf("negative parallelism %d×%d", c.Channels, c.Dies)
	case c.Channels > MaxChannels:
		return errf("%d channels exceeds MaxChannels %d", c.Channels, MaxChannels)
	}
	if c.LogicalPages() == 0 {
		return errf("capacity smaller than one page")
	}
	return nil
}

// flashConfig derives the physical chip configuration. Physical capacity is
// the logical capacity plus over-provisioning, plus room for the mapping
// table itself (translation pages live in flash too) and a small GC reserve.
func (c Config) flashConfig() flash.Config {
	logicalPages := c.LogicalPages()
	dataBlocks := (logicalPages + int64(c.PagesPerBlock) - 1) / int64(c.PagesPerBlock)
	entriesPerTP := int64(c.PageSize / EntryBytesInFlash)
	numTPs := (logicalPages + entriesPerTP - 1) / entriesPerTP
	transBlocks := (numTPs + int64(c.PagesPerBlock) - 1) / int64(c.PagesPerBlock)
	total := dataBlocks + transBlocks
	phys := total + int64(float64(total)*c.OverProvision)
	if min := total + int64(c.gcThreshold())*2 + 2; phys < min {
		phys = min
	}
	// Every die needs room for open frontiers and a couple of free blocks,
	// or a many-die configuration on a tiny device starves per-die pools.
	if dies := c.Channels * c.Dies; dies > 1 {
		if min := total + int64(dies)*3; phys < min {
			phys = min
		}
	}
	return flash.Config{
		PageSize:       c.PageSize,
		PagesPerBlock:  c.PagesPerBlock,
		NumBlocks:      int(phys),
		Channels:       c.Channels,
		DiesPerChannel: c.Dies,
		ReadLatency:    c.ReadLatency,
		WriteLatency:   c.WriteLatency,
		EraseLatency:   c.EraseLatency,
		EraseLimit:     c.EraseLimit,
	}
}

func (c Config) gcThreshold() int {
	if c.GCThresholdBlocks > 0 {
		return c.GCThresholdBlocks
	}
	logicalPages := c.LogicalPages()
	blocks := int(logicalPages / int64(c.PagesPerBlock))
	t := blocks / 100
	if t < 4 {
		t = 4
	}
	return t
}
